"""Resilience tier: zero-drift, lockstep, determinism and the SLO win.

The PR 9 contract has three legs.  First, ``resilience="none"`` (or
None) is *bit-identical* to the pre-resilience engine on every stock
scenario x policy x dispatch cell — the seam itself costs nothing.
Second, every active policy (retry / hedge / degrade) runs in exact
lockstep between the optimised engine and the retained reference, and
replays identically across materialised vs streamed traces and across
shard counts.  Third, the behavioural point of the tier: on the
failure-storm cell, hedged dispatch strictly beats no-resilience SLO
attainment at bounded (< 2x) energy overhead.
"""

import pytest

from repro.errors import ConfigError
from repro.serving import (
    DISPATCH_STRATEGIES,
    FailurePlan,
    HedgePolicy,
    LayerMemoCache,
    RESILIENCE_POLICIES,
    ResiliencePolicy,
    RetryPolicy,
    SCENARIOS,
    ServingSimulator,
    SloPolicy,
    generate_trace,
    get_scenario,
    make_policy,
    make_resilience,
)
from repro.serving.reference import run_reference

SHARED = LayerMemoCache()

#: Deadlines tight enough to genuinely fire on 100-request cells.
ACTIVE_SPECS = (
    "retry:timeout_us=300,budget=2",
    "hedge:delay_us=200",
    "degrade:timeout_us=400",
)


def run_cell(scenario_name, policy_name, dispatch, resilience,
             n=100, seed=5, replicas=2, **kwargs):
    """One cell on both engines -> (result, reference run, trace)."""
    scenario = get_scenario(scenario_name)
    sim = ServingSimulator("SMART", replicas=replicas,
                           policy=make_policy(policy_name),
                           dispatch=dispatch, cache=SHARED,
                           resilience=resilience, **kwargs)
    rate = scenario.load * sim.capacity_rps(scenario)
    trace = generate_trace(scenario, rate, n, seed)
    failures = (FailurePlan(count=scenario.faults, seed=seed)
                if scenario.faults and sim.failures is None else None)
    result = sim.run(trace, scenario=scenario.name, rate=rate,
                     failures=failures)
    ref = run_reference(sim, trace, failures=failures)
    return result, ref, trace


class TestMakeResilience:
    @pytest.mark.parametrize("spec", [None, "", "none"])
    def test_none_specs_resolve_to_none(self, spec):
        assert make_resilience(spec) is None

    def test_policy_instances_pass_through(self):
        policy = RetryPolicy(timeout_us=200)
        assert make_resilience(policy) is policy

    def test_stock_names_resolve(self):
        for name in RESILIENCE_POLICIES:
            if name == "none":
                continue
            policy = make_resilience(name)
            assert isinstance(policy, ResiliencePolicy)
            assert policy.name == name

    def test_options_parse(self):
        policy = make_resilience("retry:timeout_us=250,budget=3,"
                                 "backoff_us=10,jitter=0.5")
        assert policy.timeout_us == 250
        assert policy.budget == 3
        assert policy.backoff_us == 10
        assert policy.jitter == 0.5

    @pytest.mark.parametrize("bad", [
        "warp", "retry:warp=1", "hedge:delay_us=oops",
        "retry:budget=0", "hedge:delay_us=-5",
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ConfigError):
            make_resilience(bad)

    def test_backoff_schedule_is_a_pure_function(self):
        # jitter is a hash of (seed, request, attempt): no hidden RNG
        # state, so schedules replay identically across processes
        a = RetryPolicy(timeout_us=100, backoff_us=50, seed=3)
        b = RetryPolicy(timeout_us=100, backoff_us=50, seed=3)
        schedule = [a.backoff_s(17, k) for k in (1, 2, 3)]
        assert [b.backoff_s(17, k) for k in (1, 2, 3)] == schedule
        assert schedule == sorted(schedule)  # exponential growth
        other = RetryPolicy(timeout_us=100, backoff_us=50, seed=4)
        assert [other.backoff_s(17, k) for k in (1, 2, 3)] != schedule


class TestZeroDrift:
    """``none`` must be bit-identical to the pre-resilience engine."""

    @pytest.mark.parametrize("dispatch", DISPATCH_STRATEGIES)
    @pytest.mark.parametrize("policy", ["fixed", "timeout"])
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_none_matches_default_everywhere(self, scenario, policy,
                                             dispatch):
        base, base_ref, trace = run_cell(scenario, policy, dispatch,
                                         resilience=None)
        none, none_ref, _ = run_cell(scenario, policy, dispatch,
                                     resilience="none")
        assert none.latencies == base.latencies
        assert none.energy_per_request == base.energy_per_request
        assert none.batches == base.batches
        assert none_ref.done == base_ref.done
        assert none_ref.batches == base_ref.batches
        assert none.resilience == ""
        assert none.timeouts == none.retries == none.hedges == 0

    def test_none_with_slo_still_identical(self):
        base, _, _ = run_cell("overload", "timeout", "least_loaded",
                              resilience=None,
                              slo=SloPolicy(target=2000e-6))
        none, _, _ = run_cell("overload", "timeout", "least_loaded",
                              resilience="none",
                              slo=SloPolicy(target=2000e-6))
        assert none.latencies == base.latencies
        assert none.energy_per_request == base.energy_per_request


class TestLockstep:
    """Active policies: optimised engine == reference engine, exactly."""

    @pytest.mark.parametrize("dispatch", DISPATCH_STRATEGIES)
    @pytest.mark.parametrize("spec", ACTIVE_SPECS)
    @pytest.mark.parametrize("scenario", ["overload", "bursty"])
    def test_active_cells_bit_identical(self, scenario, spec, dispatch):
        result, ref, trace = run_cell(scenario, "timeout", dispatch,
                                      resilience=spec)
        assert result.latencies == tuple(
            float("inf") if r.request_id in frozenset(ref.shed)
            else ref.done[r.request_id][0] - r.arrival
            for r in trace)
        assert result.energy_per_request == tuple(
            0.0 if r.request_id in frozenset(ref.shed)
            else ref.done[r.request_id][1] for r in trace)
        assert result.batches == ref.batches
        assert result.wasted_energy == ref.wasted_energy
        assert (result.timeouts, result.retries, result.hedges,
                result.cancels, result.degraded) == \
               (ref.timeouts, ref.retries, ref.hedges, ref.cancels,
                ref.degraded)

    def test_the_cells_actually_fire(self):
        # guard against a vacuous lockstep: the tight deadlines above
        # must genuinely exercise every handler path
        retry, _, _ = run_cell("overload", "timeout", "shard",
                               resilience=ACTIVE_SPECS[0])
        hedge, _, _ = run_cell("overload", "timeout", "shard",
                               resilience=ACTIVE_SPECS[1])
        degrade, _, _ = run_cell("overload", "timeout", "shard",
                                 resilience=ACTIVE_SPECS[2])
        assert retry.timeouts > 0 and retry.retries > 0
        assert hedge.hedges > 0 and hedge.cancels > 0
        assert degrade.degraded > 0
        assert degrade.accuracy_cost > 0

    def test_custom_subclass_rejected_by_reference(self):
        class Weird(RetryPolicy):
            pass

        sim = ServingSimulator("SMART", replicas=2, cache=SHARED,
                               policy=make_policy("timeout"),
                               resilience=Weird(timeout_us=100))
        scenario = get_scenario("steady")
        rate = scenario.load * sim.capacity_rps(scenario)
        trace = generate_trace(scenario, rate, 20, 1)
        with pytest.raises(ConfigError, match="stock resilience"):
            run_reference(sim, trace)


class TestDeterminism:
    """Same seed => same retry/hedge schedules, however the trace and
    work are delivered."""

    @pytest.mark.parametrize("spec", ACTIVE_SPECS)
    def test_streamed_run_matches_materialised(self, spec):
        scenario = get_scenario("overload")
        sim = ServingSimulator("SMART", replicas=2, cache=SHARED,
                               policy=make_policy("timeout"),
                               dispatch="shard", resilience=spec)
        rate = scenario.load * sim.capacity_rps(scenario)
        trace = generate_trace(scenario, rate, 200, seed=9)
        networks = {m: sim.network(m) for m in scenario.mix.models()}
        batch = sim.make_engine(networks).run(trace)
        streamed = sim.make_engine(networks).run(iter(trace))
        assert streamed.done == batch.done
        assert streamed.batches == batch.batches
        assert (streamed.timeouts, streamed.retries, streamed.hedges,
                streamed.cancels, streamed.degraded) == \
               (batch.timeouts, batch.retries, batch.hedges,
                batch.cancels, batch.degraded)

    def test_reruns_replay_exactly(self):
        first, _, _ = run_cell("overload", "timeout", "least_loaded",
                               resilience=ACTIVE_SPECS[0], seed=13)
        again, _, _ = run_cell("overload", "timeout", "least_loaded",
                               resilience=ACTIVE_SPECS[0], seed=13)
        assert again.latencies == first.latencies
        assert again.energy_per_request == first.energy_per_request
        assert again.retries == first.retries

    def test_hedge_needs_a_second_replica(self):
        # with one replica there is no independent destination: the
        # policy must stay silent rather than duplicate onto the same
        # queue it is trying to escape
        result, ref, _ = run_cell("overload", "timeout", "round_robin",
                                  resilience="hedge:delay_us=100",
                                  replicas=1)
        assert result.hedges == 0 and ref.hedges == 0


class TestFailureStormWin:
    """The enforced behavioural criterion: on the failure-storm cell,
    hedged dispatch strictly beats no-resilience SLO attainment with
    bounded energy overhead."""

    CELL = dict(replicas=6, dispatch="shard", n=800, seed=7)

    def _storm(self, resilience):
        result, _, _ = run_cell("failure-storm", "timeout",
                                self.CELL["dispatch"], resilience,
                                n=self.CELL["n"], seed=self.CELL["seed"],
                                replicas=self.CELL["replicas"],
                                slo=SloPolicy(target=3000e-6))
        return result

    def test_hedge_strictly_beats_none_at_bounded_energy(self):
        none = self._storm(None)
        hedge = self._storm("hedge:delay_us=2700")
        assert none.slo_attainment < 1.0  # the storm genuinely hurts
        assert hedge.slo_attainment > none.slo_attainment
        assert hedge.hedges > 0
        energy_none = sum(none.energy_per_request)
        energy_hedge = sum(e for e in hedge.energy_per_request
                           if e != float("inf"))
        assert energy_hedge < 2 * energy_none

    def test_hedge_rescues_exactly_the_storm_victims(self):
        # the 17 misses under ``none`` are fault-redispatch victims
        # landing just over the SLO; the late hedge must rescue them
        # without pushing any previously-passing request over the line
        none = self._storm(None)
        hedge = self._storm("hedge:delay_us=2700")
        slo = 3000e-6
        newly_broken = sum(
            1 for a, b in zip(none.latencies, hedge.latencies)
            if a <= slo < b)
        assert newly_broken == 0

    def test_retry_stays_bounded_even_when_it_cannot_win(self):
        # under shard dispatch a retried singleton re-lands on the
        # model's home replica, so retry cannot rescue queue-delay
        # victims the way hedge does — but its cost must stay bounded
        # and every request still completes exactly once
        none = self._storm(None)
        retry = self._storm("retry:timeout_us=2700,budget=1")
        assert retry.retries > 0
        assert len(retry.latencies) == len(none.latencies)
        assert sum(retry.energy_per_request) < \
            2 * sum(none.energy_per_request)


class TestDegradeAccounting:
    def test_degrade_charges_the_discount(self):
        result, _, _ = run_cell("overload", "timeout", "shard",
                                resilience="degrade:timeout_us=400,"
                                           "service_scale=0.5,"
                                           "energy_scale=0.4,"
                                           "accuracy_drop=0.03")
        assert result.degraded > 0
        assert result.accuracy_cost == pytest.approx(
            result.degraded * 0.03 / len(result.requests))

    def test_hedge_waste_is_accounted(self):
        result, _, _ = run_cell("overload", "timeout", "shard",
                                resilience="hedge:delay_us=200")
        base, _, _ = run_cell("overload", "timeout", "shard",
                              resilience=None)
        assert result.hedges > 0
        # cancelled/losing duplicates burn real energy
        assert result.wasted_energy > base.wasted_energy

    def test_row_surfaces_the_counters(self):
        result, _, _ = run_cell("overload", "timeout", "shard",
                                resilience=ACTIVE_SPECS[0])
        row = result.to_row()
        assert row["resilience"] == "retry"
        assert row["timeouts"] == result.timeouts
        assert row["retries"] == result.retries


class TestSloBudget:
    def test_timeout_defaults_to_the_slo(self):
        # retry with no explicit deadline derives one from the SLO
        slo = SloPolicy(target=900e-6)
        policy = make_resilience("retry")
        assert policy.timeout_s(slo) == pytest.approx(900e-6)

    def test_hedge_defaults_to_half_the_slo(self):
        policy = HedgePolicy()
        assert policy.timeout_s(SloPolicy(target=1000e-6)) == \
            pytest.approx(500e-6)

    def test_deadline_needs_some_budget_source(self):
        # no SLO and no explicit timeout: nothing to arm, clean error
        with pytest.raises(ConfigError):
            run_cell("steady", "timeout", "shard", resilience="retry")
