"""Geo-distributed serving tier: exactness, routing, economics.

The geo contract mirrors the sharded one — equality, not
approximation.  A single-region fleet with zero interconnect delay
and stock policies is **bit-identical** to the plain
``ServingSimulator`` on every stock scenario x policy cell
(per-request latencies AND energies); multi-region runs are
deterministic, lose no requests, and the routing policies show their
designed behaviours (follow-the-sun chases the deepest night,
cheapest-joule respects the SLO and capacity headroom, spillover
stays home until saturated, storms reroute dark regions).
"""

import json

import pytest

from repro.__main__ import main
from repro.errors import ConfigError
from repro.serving import (
    GEO_POLICIES,
    GeoRouter,
    Interconnect,
    POLICIES,
    REQUEST_BYTES,
    RegionFailurePlan,
    RegionOutage,
    RegionSpec,
    SCENARIOS,
    STOCK_REGIONS,
    ServingSimulator,
    default_regions,
    make_geo,
    make_policy,
    validate_geo,
)

SEED = 3
N = 400

#: One region, SMART x2, zero-width interconnect — the monolithic twin.
SOLO = (RegionSpec("solo", accelerator="SMART", replicas=2),)


def _geo_solo(scenario, policy):
    router = GeoRouter(SOLO, policy=policy, batch_size=8,
                       detail=True, mode="inline")
    return router.run_scenario(scenario, N, seed=SEED)


def _monolithic(scenario, policy):
    simulator = ServingSimulator(
        "SMART", replicas=2,
        policy=make_policy(policy, batch_size=8),
        dispatch="round_robin",
    )
    return simulator.run_scenario(scenario, N, seed=SEED)


class TestZeroDrift:
    """Single region + zero delay + stock policies == plain engine."""

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    @pytest.mark.parametrize("policy", sorted(POLICIES))
    def test_bit_identical_on_every_stock_cell(self, name, policy):
        geo = _geo_solo(name, policy)
        mono = _monolithic(name, policy)
        assert geo.detail is not None
        assert geo.detail.latencies == mono.latencies
        assert geo.detail.energy_per_request == mono.energy_per_request

    def test_aggregates_match_monolithic(self):
        geo = _geo_solo("bursty", "timeout")
        mono = _monolithic("bursty", "timeout")
        assert geo.requests == len(mono.latencies)
        assert geo.energy == pytest.approx(sum(mono.energy_per_request))
        assert geo.batches == len(mono.batches)
        assert geo.net_delay_s == 0.0
        assert geo.remote_frac == 0.0


class TestInterconnect:
    def test_same_region_is_free(self):
        for topology in ("ring", "mesh", "tree"):
            icx = Interconnect(5, topology=topology)
            assert icx.delay(2, 2) == 0.0
            assert icx.hops(2, 2) == 0

    def test_mesh_is_one_hop(self):
        icx = Interconnect(6, topology="mesh")
        assert all(icx.hops(a, b) == 1
                   for a in range(6) for b in range(6) if a != b)
        assert icx.diameter() == 1

    def test_ring_takes_the_short_way_round(self):
        icx = Interconnect(6, topology="ring")
        assert icx.hops(0, 1) == 1
        assert icx.hops(0, 5) == 1  # wraps, not 5 hops
        assert icx.hops(0, 3) == 3
        assert icx.diameter() == 3

    def test_tree_walks_the_lca(self):
        icx = Interconnect(7, topology="tree")
        assert icx.hops(1, 0) == 1  # child -> root
        assert icx.hops(3, 4) == 2  # siblings via parent 1
        assert icx.hops(3, 6) == 4  # leaf -> root -> leaf
        assert icx.diameter() == 4

    def test_delay_is_store_and_forward(self):
        icx = Interconnect(6, topology="ring", bandwidth_gbps=10.0,
                           base_latency_us=50.0)
        per_hop = 50e-6 + REQUEST_BYTES * 8.0 / 10e9
        assert icx.delay(0, 3) == pytest.approx(3 * per_hop)
        # payload size scales the serialisation term only
        assert icx.delay(0, 1, nbytes=0) == pytest.approx(50e-6)

    def test_validation(self):
        with pytest.raises(ConfigError, match="topology"):
            Interconnect(3, topology="torus")
        with pytest.raises(ConfigError, match="bandwidth"):
            Interconnect(3, bandwidth_gbps=0.0)
        with pytest.raises(ConfigError, match="at least one"):
            Interconnect(0)
        icx = Interconnect(3)
        with pytest.raises(ConfigError, match="outside"):
            icx.hops(0, 3)
        with pytest.raises(ConfigError, match="payload"):
            icx.delay(0, 1, nbytes=-1)


class TestGeoPolicies:
    def test_follow_sun_moves_traffic_on_diurnal(self):
        router = GeoRouter(3, geo="follow_sun", topology="ring",
                           mode="inline")
        result = router.run_scenario("diurnal", 1200, seed=SEED)
        assert result.requests == 1200
        assert result.remote_frac > 0.3  # the sun really moved it

    def test_follow_sun_stays_home_without_a_wave(self):
        router = GeoRouter(3, geo="follow_sun", mode="inline")
        result = router.run_scenario("steady", 600, seed=SEED)
        assert result.remote_frac == 0.0  # flat wave -> fewest hops

    def test_cheapest_joule_prefers_cheap_grids(self):
        home = GeoRouter(3, geo="home", mode="inline") \
            .run_scenario("diurnal", 1200, seed=SEED)
        cheap = GeoRouter(3, geo="cheapest_joule", mode="inline") \
            .run_scenario("diurnal", 1200, seed=SEED)
        assert cheap.cost_usd < home.cost_usd

    def test_spillover_stays_home_under_capacity(self):
        router = GeoRouter(3, geo="spillover", mode="inline")
        result = router.run_scenario("steady", 600, seed=SEED)
        assert result.remote_frac < 0.1

    def test_runs_are_deterministic(self):
        def run():
            row = GeoRouter(
                4, geo="cheapest_joule", topology="ring", storms=1,
                slo_us=4000.0, mode="inline",
            ).run_scenario("diurnal", 800, seed=SEED).to_row()
            row.pop("agg_rps")  # wall-clock based, the only exception
            return row
        assert run() == run()

    def test_make_geo_rejects_unknown(self):
        with pytest.raises(ConfigError, match="geo policy"):
            make_geo("teleport")
        assert set(GEO_POLICIES) == {"home", "follow_sun",
                                     "cheapest_joule", "spillover"}


class TestRegionStorms:
    def test_storm_reroutes_dark_region(self):
        calm = GeoRouter(4, topology="ring", mode="inline") \
            .run_scenario("steady", 2000, seed=1)
        stormy = GeoRouter(4, topology="ring", storms=2,
                           mode="inline") \
            .run_scenario("steady", 2000, seed=1)
        assert calm.requests == stormy.requests == 2000
        assert sum(r.rerouted for r in stormy.regions) > 0
        assert sum(r.rerouted for r in calm.regions) == 0

    def test_outage_window_validates(self):
        with pytest.raises(ConfigError):
            RegionOutage(region=0, at=2.0, until=1.0)
        outage = RegionOutage(region=1, at=1.0, until=2.0)
        assert outage.down(1.5) and not outage.down(2.5)

    def test_plan_is_seeded_and_bounded(self):
        plan = RegionFailurePlan(count=3, seed=9)
        outages = plan.resolve(0.0, 100.0, regions=4)
        assert outages == plan.resolve(0.0, 100.0, regions=4)
        assert len(outages) == 3
        for o in outages:
            assert 0.0 <= o.at < o.until
            assert 0 <= o.region < 4


class TestFleetAccounting:
    def test_region_rows_cover_the_fleet(self):
        router = GeoRouter(4, geo="follow_sun", topology="ring",
                           slo_us=4000.0, mode="inline")
        result = router.run_scenario("diurnal", 1000, seed=SEED)
        rows = result.region_rows()
        assert [r["region"] for r in rows] == \
            [spec.name for spec in default_regions(4)]
        assert sum(r["requests"] for r in rows) == 1000
        assert sum(r["share"] for r in rows) == pytest.approx(1.0)
        for row in rows:
            assert 0.0 <= row["slo_attain"] <= 1.0
            assert row["usd_per_mj"] > 0

    def test_no_request_lost_across_regions(self):
        for count in (2, 3, 5):
            result = GeoRouter(count, geo="follow_sun",
                               topology="ring", mode="inline") \
                .run_scenario("bursty", 900, seed=SEED)
            assert result.requests == 900
            assert sum(r.offered for r in result.regions) == 900

    def test_validate_geo_rejects_malformed_fleets(self):
        with pytest.raises(ConfigError, match="unique"):
            validate_geo((RegionSpec("a"), RegionSpec("a")))
        with pytest.raises(ConfigError, match="at least one"):
            validate_geo(())
        with pytest.raises(ConfigError, match="replica"):
            RegionSpec("a", replicas=0)
        with pytest.raises(ConfigError, match="at least one request"):
            GeoRouter(5, mode="inline").run_scenario("steady", 3,
                                                     seed=SEED)

    def test_stock_palette_is_well_formed(self):
        names = [spec.name for spec in STOCK_REGIONS]
        assert len(set(names)) == len(names)
        fleet = default_regions(7)  # wraps past the palette
        assert len({spec.name for spec in fleet}) == 7


class TestCli:
    def test_geo_grid_runs(self, capsys):
        code = main(["serve-sim", "steady", "--geo", "2",
                     "--requests", "200", "--policy", "timeout"])
        out = capsys.readouterr().out
        assert code == 0
        assert "geo[2]" in out
        assert "per-region breakdown" in out
        assert "us-east" in out and "eu-west" in out

    def test_geo_json_carries_region_rows(self, capsys):
        code = main(["serve-sim", "steady", "--geo", "2", "--json",
                     "--requests", "200", "--policy", "timeout"])
        assert code == 0
        rows = json.loads(capsys.readouterr().out)
        assert any(r.get("region") == "us-east" for r in rows)
        assert any(r.get("geo") == "home" for r in rows)

    @pytest.mark.parametrize("args,fragment", [
        (["--geo", "3", "--shards", "2"], "--shards"),
        (["--geo", "0"], "at least one region"),
        (["--geo", "nowhere"], "unknown region"),
        (["--geo", "3", "--replicas", "4"], "drop --replicas"),
        (["--geo", "3", "--fail", "2"], "--geo-storms"),
        (["--geo", "3", "--steal"], "not plumbed"),
        (["--geo", "3", "--geo-policy", "teleport"], "geo policy"),
        (["--geo", "3", "--topology", "torus"], "topology"),
        (["--geo-policy", "follow_sun"], "need --geo"),
    ])
    def test_usage_errors_exit_2(self, args, fragment, capsys):
        code = main(["serve-sim", "steady", *args])
        assert code == 2
        assert fragment in capsys.readouterr().out
