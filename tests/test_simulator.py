"""Tests for the accelerator simulator and energy model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    make_accelerator,
    make_energy_model,
    make_smart,
    make_supernpu,
    make_tpu,
)
from repro.errors import ConfigError
from repro.models import get_model
from repro.systolic.layers import ConvLayer, WORD_BYTES


class TestBasicInvariants:
    def test_latency_positive(self):
        net = get_model("AlexNet")
        for acc in (make_tpu(), make_supernpu(), make_smart()):
            run = acc.simulate(net, 1)
            assert run.latency > 0
            assert run.throughput_macs > 0

    def test_throughput_below_peak(self):
        net = get_model("ResNet50")
        for acc in (make_tpu(), make_supernpu(), make_smart()):
            run = acc.simulate(net, 8)
            assert run.throughput_macs <= acc.peak_macs

    def test_latency_equals_layer_sum(self):
        acc = make_smart()
        run = acc.simulate(get_model("AlexNet"), 1)
        assert run.latency == pytest.approx(
            sum(l.total_time for l in run.layers)
        )

    @given(st.integers(min_value=1, max_value=8))
    @settings(max_examples=8, deadline=None)
    def test_batch_total_monotone(self, batch):
        """A bigger batch never finishes faster in total."""
        acc = make_smart()
        layer = ConvLayer("c", 27, 27, 96, 128, 3, 3, padding=1)
        smaller = acc.simulate_layer(layer, batch).total_time
        larger = acc.simulate_layer(layer, batch + 1).total_time
        assert larger >= smaller * 0.999

    def test_batch_per_image_improves(self):
        """Per-image latency improves with batching on every design."""
        net = get_model("ResNet50")
        for acc in (make_tpu(), make_supernpu(), make_smart()):
            single = acc.simulate(net, 1).latency
            batched = acc.simulate(net, 16).latency / 16
            assert batched <= single * 1.01


class TestSubBatchScaling:
    """Partial sub-batches must charge whole passes (not fractions)."""

    #: Big enough per-image footprint that SMART sub-batches it.
    BIG_LAYER = ConvLayer("vgg-conv1_2", 224, 224, 3, 64, 3, 3, padding=1)

    def test_partial_pass_exceeds_fractional_scaling(self):
        """Regression: batch % b_eff != 0 used to under-charge the
        final pass by scaling the sub-batch result by batch/b_eff."""
        acc = make_smart()
        layer = self.BIG_LAYER
        b_eff = acc.effective_batch(layer, 1000)
        assert 1 < b_eff < 1000  # the layer really does sub-batch
        batch = b_eff * 2 + max(1, b_eff // 2)
        assert batch % b_eff != 0
        sub = acc.simulate_layer(layer, b_eff)
        fractional = sub.total_time * (batch / b_eff)
        result = acc.simulate_layer(layer, batch)
        assert result.total_time > fractional

    def test_exact_multiple_matches_scaled_passes(self):
        acc = make_smart()
        layer = self.BIG_LAYER
        b_eff = acc.effective_batch(layer, 1000)
        sub = acc.simulate_layer(layer, b_eff)
        result = acc.simulate_layer(layer, 3 * b_eff)
        assert result.total_time == pytest.approx(3 * sub.total_time)
        assert result.shift_steps == pytest.approx(3 * sub.shift_steps)

    def test_residual_pass_decomposition(self):
        """ceil semantics: full passes of b_eff plus one residual pass."""
        acc = make_smart()
        layer = self.BIG_LAYER
        b_eff = acc.effective_batch(layer, 1000)
        residual = max(1, b_eff // 2)
        batch = 2 * b_eff + residual
        expected = (2 * acc.simulate_layer(layer, b_eff).total_time
                    + acc.simulate_layer(layer, residual).total_time)
        assert acc.simulate_layer(layer, batch).total_time == (
            pytest.approx(expected)
        )

    def test_energy_counters_cover_residual_pass(self):
        acc = make_smart()
        layer = self.BIG_LAYER
        b_eff = acc.effective_batch(layer, 1000)
        batch = b_eff + 1
        per_pass = acc.simulate_layer(layer, b_eff)
        result = acc.simulate_layer(layer, batch)
        assert result.random_accesses > per_pass.random_accesses

    def test_effective_batch_tiny_headroom_returns_one(self):
        """headroom <= 0 (capacity below the weight-tile reserve)."""
        from repro.systolic.memsys import DramModel, IdealSpm, MemorySystem
        from repro.systolic.simulator import AcceleratorModel

        acc = AcceleratorModel(
            name="tiny", rows=8, cols=8, frequency=1e9,
            memsys=MemorySystem(scheme="ideal", dram=DramModel(),
                                total_capacity=64 * 1024,
                                ideal=IdealSpm(64 * 1024)),
        )
        layer = ConvLayer("c", 8, 8, 4, 4, 3, 3, padding=1)
        assert acc.effective_batch(layer, 32) == 1

    def test_effective_batch_per_image_exceeding_capacity_returns_one(self):
        acc = make_smart()
        huge = ConvLayer("huge", 4096, 4096, 3, 3, 3, 3, padding=1)
        assert (huge.input_bytes + huge.output_bytes
                > acc.memsys.total_capacity)
        assert acc.effective_batch(huge, 8) == 1

    def test_effective_batch_capped_by_requested_batch(self):
        acc = make_smart()
        small = ConvLayer("small", 8, 8, 4, 4, 3, 3, padding=1)
        assert acc.effective_batch(small, 5) == 5


class TestShiftRotationAmortisation:
    """SHIFT energy must amortise the same rotations as the timing.

    Regression: ``_rotation_steps`` amortised only the *input* jumps
    at batch > 1 while ``_simulate_shift`` amortised inputs *and*
    outputs via ``stream_stall(..., batch)``, so SHIFT dynamic energy
    overcounted output rotations for every batched run.
    """

    LAYER = ConvLayer("conv", 28, 28, 32, 32, 3, 3, padding=1)

    def test_energy_steps_match_timing_amortisation(self):
        from repro.systolic.memsys import amortised_jumps
        from repro.systolic.trace import layer_trace
        from repro.systolic.mapping import WeightStationaryMapping

        acc = make_supernpu()
        batch = 4
        result = acc.simulate_layer(self.LAYER, batch)
        mapping = WeightStationaryMapping(self.LAYER, acc.rows, acc.cols)
        trace = layer_trace(mapping, batch)
        shift = acc.memsys.shift
        words = float(trace.inputs.words + trace.weights.words
                      + trace.outputs.words)
        expected = words + sum(
            amortised_jumps(stats.jumps, b)
            * shift.jump_steps(stats.avg_jump_words)
            for stats, b in ((trace.inputs, batch), (trace.weights, 1),
                             (trace.outputs, batch))
        )
        assert result.shift_steps == pytest.approx(expected)

    def test_batched_outputs_amortise(self):
        """Per-image rotation steps must drop from batch 1 to batch 4
        by more than input amortisation alone ever could if outputs
        still paid full price (the old accounting)."""
        from repro.systolic.memsys import amortised_jumps
        from repro.systolic.trace import layer_trace
        from repro.systolic.mapping import WeightStationaryMapping

        acc = make_supernpu()
        batch = 4
        single = acc.simulate_layer(self.LAYER, 1)
        batched = acc.simulate_layer(self.LAYER, batch)

        mapping = WeightStationaryMapping(self.LAYER, acc.rows, acc.cols)
        trace = layer_trace(mapping, batch)
        shift = acc.memsys.shift
        words = float(trace.inputs.words + trace.weights.words
                      + trace.outputs.words)
        # the retired accounting: outputs unamortised at batch > 1
        stale = words + (
            amortised_jumps(trace.inputs.jumps, batch)
            * shift.jump_steps(trace.inputs.avg_jump_words)
            + trace.weights.jumps
            * shift.jump_steps(trace.weights.avg_jump_words)
            + trace.outputs.jumps
            * shift.jump_steps(trace.outputs.avg_jump_words)
        )
        assert batched.shift_steps < stale
        assert batched.shift_steps < batch * single.shift_steps

    def test_amortised_jumps_shared_helper(self):
        from repro.systolic.memsys import (JUMP_BATCH_RESIDUAL,
                                           amortised_jumps)

        assert amortised_jumps(100.0, 1) == 100.0
        assert amortised_jumps(100.0, 4) == pytest.approx(
            100.0 * (1.0 + 3 * JUMP_BATCH_RESIDUAL) / 4
        )
        with pytest.raises(ConfigError):
            amortised_jumps(10.0, 0)


class TestHeterogeneousUnits:
    """The RANDOM-port accounting must stay byte-denominated."""

    def test_output_transfer_charged_in_bytes(self):
        """Regression: the output path used to pass a word count where
        bulk_transfer_time expects bytes."""
        from repro.systolic.mapping import WeightStationaryMapping
        from repro.systolic.trace import layer_trace

        acc = make_accelerator("Heter", technology="SRAM")
        layer = ConvLayer("c", 27, 27, 96, 128, 3, 3, padding=1)
        mapping = WeightStationaryMapping(layer, acc.rows, acc.cols)
        trace = layer_trace(mapping, batch=1)

        hetero = acc.memsys.hetero
        random = hetero.random
        window = layer.kernel_h * layer.in_w * layer.in_c
        swap = max(1.0, 2.0 * window / hetero.input_shift.capacity_bytes)
        in_transfer = random.bulk_transfer_time(
            layer.input_bytes * swap
        )
        out_transfer = random.bulk_transfer_time(
            float(trace.outputs.words * WORD_BYTES), write=True
        )
        result = acc.simulate_layer(layer, 1)
        assert result.port_time == pytest.approx(in_transfer + out_transfer)

    def test_lines_is_byte_denominated(self):
        from repro.systolic.memsys import RandomSpm

        spm = RandomSpm(capacity_bytes=1024, banks=4, read_latency=1e-9,
                        write_latency=1e-9, issue_interval=1e-9,
                        line_bytes=64)
        assert spm.lines(64) == 1
        assert spm.lines(65) == 2
        assert spm.lines(0) == 0

    def test_dead_sequential_helper_removed(self):
        import repro.systolic.simulator as sim

        assert not hasattr(sim, "_sequential_only")


class TestSchemeOrdering:
    """The paper's qualitative ordering must hold on every model."""

    @pytest.mark.parametrize("model", ["AlexNet", "ResNet50", "VGG16"])
    def test_smart_beats_supernpu_single(self, model):
        net = get_model(model)
        smart = make_smart().simulate(net, 1).latency
        supernpu = make_supernpu().simulate(net, 1).latency
        assert smart < supernpu

    @pytest.mark.parametrize("model", ["AlexNet", "GoogleNet"])
    def test_smart_beats_pipe(self, model):
        net = get_model(model)
        smart = make_smart().simulate(net, 1).latency
        pipe = make_accelerator("Pipe").simulate(net, 1).latency
        assert smart <= pipe

    @pytest.mark.parametrize("model", ["AlexNet", "VGG16"])
    def test_sram_scheme_slowest(self, model):
        net = get_model(model)
        sram = make_accelerator("SRAM").simulate(net, 1).latency
        supernpu = make_supernpu().simulate(net, 1).latency
        assert sram > supernpu

    def test_supernpu_beats_tpu(self):
        net = get_model("GoogleNet")
        supernpu = make_supernpu().simulate(net, 1).latency
        tpu = make_tpu().simulate(net, 1).latency
        assert supernpu < tpu

    def test_prefetch_depth_helps(self):
        net = get_model("ResNet50")
        no_prefetch = make_smart(prefetch_depth=1).simulate(net, 1).latency
        deep = make_smart(prefetch_depth=3).simulate(net, 1).latency
        assert deep < no_prefetch

    def test_slow_writes_hurt(self):
        """Fig 25: MRAM/SNM-class write latencies sink the RANDOM array
        ("the outputs of a layer are the inputs of the next")."""
        net = get_model("GoogleNet")
        fast = make_smart().simulate(net, 4).latency
        slow = make_smart(write_latency=2e-9).simulate(net, 4).latency
        assert slow > 1.5 * fast

    def test_small_shift_arrays_hurt(self):
        """Fig 22: 16 KB SHIFT arrays lose throughput."""
        net = get_model("AlexNet")
        small = make_smart(shift_kb=16).simulate(net, 8).latency
        nominal = make_smart(shift_kb=32).simulate(net, 8).latency
        assert small >= nominal * 0.99


class TestEnergy:
    def test_components_positive(self):
        acc = make_smart()
        run = acc.simulate(get_model("AlexNet"), 1)
        energy = make_energy_model(acc).evaluate(run)
        assert energy.matrix > 0
        assert energy.spm_dynamic > 0
        assert energy.total > 0

    def test_smart_saves_energy_vs_supernpu(self):
        """Figs 20/21 headline: SMART cuts inference energy."""
        net = get_model("AlexNet")
        results = {}
        for acc in (make_supernpu(), make_smart()):
            run = acc.simulate(net, 1)
            results[acc.name] = make_energy_model(acc).evaluate(run).total
        assert results["SMART"] < 0.6 * results["SuperNPU"]

    def test_sfq_beats_tpu_energy(self):
        """SMART beats the TPU on energy even with 400x cooling.

        The paper reports 1.9% of TPU energy; our TPU baseline is
        relatively cheaper (we exempt DRAM weight streaming uniformly),
        so the band here is <35% — see EXPERIMENTS.md.
        """
        net = get_model("AlexNet")
        tpu = make_tpu()
        smart = make_smart()
        e_tpu = make_energy_model(tpu).evaluate(tpu.simulate(net, 1)).total
        e_smart = make_energy_model(smart).evaluate(
            smart.simulate(net, 1)
        ).total
        assert e_smart < 0.35 * e_tpu

    def test_shares_sum_to_one(self):
        acc = make_smart()
        run = acc.simulate(get_model("GoogleNet"), 1)
        energy = make_energy_model(acc).evaluate(run)
        total_share = sum(energy.share(c) for c in
                          ("matrix", "spm_dynamic", "spm_static", "dram"))
        assert total_share == pytest.approx(1.0)

    def test_supernpu_spm_dynamic_dominates(self):
        """The big SHIFT lanes dominate SuperNPU's energy (Sec 6.1)."""
        acc = make_supernpu()
        run = acc.simulate(get_model("AlexNet"), 1)
        energy = make_energy_model(acc).evaluate(run)
        assert energy.spm_dynamic > energy.matrix
