"""Tests for the accelerator simulator and energy model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    make_accelerator,
    make_energy_model,
    make_smart,
    make_supernpu,
    make_tpu,
)
from repro.models import batch_size_for, get_model
from repro.systolic.layers import ConvLayer


class TestBasicInvariants:
    def test_latency_positive(self):
        net = get_model("AlexNet")
        for acc in (make_tpu(), make_supernpu(), make_smart()):
            run = acc.simulate(net, 1)
            assert run.latency > 0
            assert run.throughput_macs > 0

    def test_throughput_below_peak(self):
        net = get_model("ResNet50")
        for acc in (make_tpu(), make_supernpu(), make_smart()):
            run = acc.simulate(net, 8)
            assert run.throughput_macs <= acc.peak_macs

    def test_latency_equals_layer_sum(self):
        acc = make_smart()
        run = acc.simulate(get_model("AlexNet"), 1)
        assert run.latency == pytest.approx(
            sum(l.total_time for l in run.layers)
        )

    @given(st.integers(min_value=1, max_value=8))
    @settings(max_examples=8, deadline=None)
    def test_batch_total_monotone(self, batch):
        """A bigger batch never finishes faster in total."""
        acc = make_smart()
        layer = ConvLayer("c", 27, 27, 96, 128, 3, 3, padding=1)
        smaller = acc.simulate_layer(layer, batch).total_time
        larger = acc.simulate_layer(layer, batch + 1).total_time
        assert larger >= smaller * 0.999

    def test_batch_per_image_improves(self):
        """Per-image latency improves with batching on every design."""
        net = get_model("ResNet50")
        for acc in (make_tpu(), make_supernpu(), make_smart()):
            single = acc.simulate(net, 1).latency
            batched = acc.simulate(net, 16).latency / 16
            assert batched <= single * 1.01


class TestSchemeOrdering:
    """The paper's qualitative ordering must hold on every model."""

    @pytest.mark.parametrize("model", ["AlexNet", "ResNet50", "VGG16"])
    def test_smart_beats_supernpu_single(self, model):
        net = get_model(model)
        smart = make_smart().simulate(net, 1).latency
        supernpu = make_supernpu().simulate(net, 1).latency
        assert smart < supernpu

    @pytest.mark.parametrize("model", ["AlexNet", "GoogleNet"])
    def test_smart_beats_pipe(self, model):
        net = get_model(model)
        smart = make_smart().simulate(net, 1).latency
        pipe = make_accelerator("Pipe").simulate(net, 1).latency
        assert smart <= pipe

    @pytest.mark.parametrize("model", ["AlexNet", "VGG16"])
    def test_sram_scheme_slowest(self, model):
        net = get_model(model)
        sram = make_accelerator("SRAM").simulate(net, 1).latency
        supernpu = make_supernpu().simulate(net, 1).latency
        assert sram > supernpu

    def test_supernpu_beats_tpu(self):
        net = get_model("GoogleNet")
        supernpu = make_supernpu().simulate(net, 1).latency
        tpu = make_tpu().simulate(net, 1).latency
        assert supernpu < tpu

    def test_prefetch_depth_helps(self):
        net = get_model("ResNet50")
        no_prefetch = make_smart(prefetch_depth=1).simulate(net, 1).latency
        deep = make_smart(prefetch_depth=3).simulate(net, 1).latency
        assert deep < no_prefetch

    def test_slow_writes_hurt(self):
        """Fig 25: MRAM/SNM-class write latencies sink the RANDOM array
        ("the outputs of a layer are the inputs of the next")."""
        net = get_model("GoogleNet")
        fast = make_smart().simulate(net, 4).latency
        slow = make_smart(write_latency=2e-9).simulate(net, 4).latency
        assert slow > 1.5 * fast

    def test_small_shift_arrays_hurt(self):
        """Fig 22: 16 KB SHIFT arrays lose throughput."""
        net = get_model("AlexNet")
        small = make_smart(shift_kb=16).simulate(net, 8).latency
        nominal = make_smart(shift_kb=32).simulate(net, 8).latency
        assert small >= nominal * 0.99


class TestEnergy:
    def test_components_positive(self):
        acc = make_smart()
        run = acc.simulate(get_model("AlexNet"), 1)
        energy = make_energy_model(acc).evaluate(run)
        assert energy.matrix > 0
        assert energy.spm_dynamic > 0
        assert energy.total > 0

    def test_smart_saves_energy_vs_supernpu(self):
        """Figs 20/21 headline: SMART cuts inference energy."""
        net = get_model("AlexNet")
        results = {}
        for acc in (make_supernpu(), make_smart()):
            run = acc.simulate(net, 1)
            results[acc.name] = make_energy_model(acc).evaluate(run).total
        assert results["SMART"] < 0.6 * results["SuperNPU"]

    def test_sfq_beats_tpu_energy(self):
        """SMART beats the TPU on energy even with 400x cooling.

        The paper reports 1.9% of TPU energy; our TPU baseline is
        relatively cheaper (we exempt DRAM weight streaming uniformly),
        so the band here is <35% — see EXPERIMENTS.md.
        """
        net = get_model("AlexNet")
        tpu = make_tpu()
        smart = make_smart()
        e_tpu = make_energy_model(tpu).evaluate(tpu.simulate(net, 1)).total
        e_smart = make_energy_model(smart).evaluate(
            smart.simulate(net, 1)
        ).total
        assert e_smart < 0.35 * e_tpu

    def test_shares_sum_to_one(self):
        acc = make_smart()
        run = acc.simulate(get_model("GoogleNet"), 1)
        energy = make_energy_model(acc).evaluate(run)
        total_share = sum(energy.share(c) for c in
                          ("matrix", "spm_dynamic", "spm_static", "dram"))
        assert total_share == pytest.approx(1.0)

    def test_supernpu_spm_dynamic_dominates(self):
        """The big SHIFT lanes dominate SuperNPU's energy (Sec 6.1)."""
        acc = make_supernpu()
        run = acc.simulate(get_model("AlexNet"), 1)
        energy = make_energy_model(acc).evaluate(run)
        assert energy.spm_dynamic > energy.matrix
