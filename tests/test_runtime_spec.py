"""Tests for the declarative Job/Sweep specs."""

import pytest

from repro.errors import ConfigError
from repro.runtime import Job, Sweep, canonical_params


class TestJob:
    def test_label_without_params(self):
        assert Job("fig18").label == "fig18"

    def test_label_with_params(self):
        job = Job("design_space", {"frequency": 2, "banks": 128})
        assert job.label == "design_space[frequency=2,banks=128]"

    def test_params_are_copied(self):
        params = {"frequency": 1}
        job = Job("design_space", params)
        params["frequency"] = 99
        assert job.params["frequency"] == 1

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigError):
            Job("")

    def test_non_serialisable_params_rejected(self):
        with pytest.raises(ConfigError):
            Job("fig18", {"callback": object()})


class TestCanonicalParams:
    def test_key_order_insensitive(self):
        assert (canonical_params({"a": 1, "b": 2})
                == canonical_params({"b": 2, "a": 1}))

    def test_distinct_values_distinct(self):
        assert (canonical_params({"a": 1})
                != canonical_params({"a": 2}))


class TestSweep:
    def test_grid_expansion_size_and_order(self):
        sweep = Sweep("design_space",
                      grid={"frequency": [1, 2], "banks": [64, 256]})
        jobs = sweep.jobs()
        assert sweep.size == 4
        assert [j.params for j in jobs] == [
            {"frequency": 1, "banks": 64},
            {"frequency": 1, "banks": 256},
            {"frequency": 2, "banks": 64},
            {"frequency": 2, "banks": 256},
        ]

    def test_expansion_is_deterministic(self):
        sweep = Sweep("design_space",
                      grid={"frequency": [1, 2, 4], "banks": [64, 256]})
        assert sweep.jobs() == sweep.jobs()

    def test_base_params_merged_and_overridden(self):
        sweep = Sweep("design_space", grid={"frequency": [1]},
                      base={"banks": 128, "frequency": 9})
        (job,) = sweep.jobs()
        assert job.params == {"banks": 128, "frequency": 1}

    def test_empty_grid_yields_single_job(self):
        jobs = Sweep("fig18").jobs()
        assert jobs == [Job("fig18")]

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigError):
            Sweep("design_space", grid={"frequency": []})

    def test_string_axis_rejected(self):
        with pytest.raises(ConfigError):
            Sweep("design_space", grid={"frequency": "1,2"})
