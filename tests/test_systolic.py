"""Tests for layers, mapping, traces and the memory-system models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError, MappingError
from repro.models import get_model, model_names
from repro.systolic import (
    ConvLayer,
    Network,
    ShiftSpm,
    RandomSpm,
    WeightStationaryMapping,
)
from repro.systolic.trace import layer_trace
from repro.units import KB, MB, NS


class TestConvLayer:
    def test_output_geometry(self):
        layer = ConvLayer("c", 27, 27, 96, 256, 5, 5, padding=2)
        assert layer.out_h == 27 and layer.out_w == 27

    def test_strided_geometry(self):
        layer = ConvLayer("c", 227, 227, 3, 96, 11, 11, stride=4)
        assert layer.out_h == 55

    def test_macs_conv(self):
        layer = ConvLayer("c", 8, 8, 4, 16, 3, 3, padding=1)
        assert layer.macs == 8 * 8 * (3 * 3 * 4) * 16

    def test_fc_treated_as_1x1(self):
        layer = ConvLayer("fc", 1, 1, 4096, 1000, 1, 1, kind="fc")
        assert layer.kernel_volume == 4096
        assert layer.macs == 4096 * 1000

    def test_depthwise_constraints(self):
        with pytest.raises(ConfigError):
            ConvLayer("dw", 8, 8, 32, 64, 3, 3, kind="dwconv")

    def test_degenerate_output_rejected(self):
        with pytest.raises(ConfigError):
            ConvLayer("c", 2, 2, 3, 8, 5, 5)

    @given(st.integers(min_value=1, max_value=4),
           st.integers(min_value=1, max_value=3))
    def test_pixel_count_consistency(self, stride, padding):
        layer = ConvLayer("c", 32, 32, 8, 8, 3, 3, stride=stride,
                          padding=padding)
        assert layer.out_pixels == layer.out_h * layer.out_w


class TestNetworks:
    def test_all_models_build(self):
        for name in model_names():
            net = get_model(name)
            assert net.total_macs > 1e8

    def test_alexnet_mac_count(self):
        """AlexNet ~1.1 GMAC with the two-GPU groups merged (the paper
        quotes "1.5 billion MAC" counting the grouped topology's
        conv+fc ops; the merged-group convention lands near 1.1G)."""
        net = get_model("AlexNet")
        assert 0.9e9 < net.total_macs < 1.5e9

    def test_alexnet_parameter_count(self):
        """AlexNet ~61 M parameters (Sec 1)."""
        net = get_model("AlexNet")
        assert net.total_weight_bytes == pytest.approx(61e6, rel=0.10)

    def test_vgg16_heaviest(self):
        assert (get_model("VGG16").total_macs
                > get_model("AlexNet").total_macs)

    def test_mobilenet_has_depthwise(self):
        net = get_model("MobileNet")
        assert any(l.kind == "dwconv" for l in net.layers)

    def test_duplicate_layer_names_rejected(self):
        layer = ConvLayer("dup", 8, 8, 4, 8, 3, 3, padding=1)
        with pytest.raises(ConfigError):
            Network("bad", (layer, layer))


class TestMapping:
    def test_fold_counts(self):
        layer = ConvLayer("c", 27, 27, 96, 256, 5, 5, padding=2)
        mapping = WeightStationaryMapping(layer, 64, 256)
        assert mapping.row_folds == -(-5 * 5 * 96 // 64)
        assert mapping.col_folds == 1

    def test_depthwise_low_utilisation(self):
        dw = ConvLayer("dw", 56, 56, 128, 128, 3, 3, padding=1,
                       kind="dwconv")
        conv = ConvLayer("pw", 56, 56, 128, 128, 1, 1)
        u_dw = WeightStationaryMapping(dw, 64, 256).utilization()
        u_pw = WeightStationaryMapping(conv, 64, 256).utilization()
        assert u_dw < 0.05 * u_pw

    def test_utilization_below_one(self):
        for name in model_names():
            for layer in get_model(name).compute_layers():
                mapping = WeightStationaryMapping(layer, 64, 256)
                assert 0 < mapping.utilization(8) <= 1.0

    def test_pool_rejected(self):
        pool = ConvLayer("p", 8, 8, 8, 8, 2, 2, stride=2, kind="pool")
        with pytest.raises(MappingError):
            WeightStationaryMapping(pool, 64, 256)

    def test_batch_amortises_cycles(self):
        layer = ConvLayer("c", 27, 27, 96, 256, 5, 5, padding=2)
        mapping = WeightStationaryMapping(layer, 64, 256)
        single = mapping.compute_cycles(1)
        batch = mapping.compute_cycles(16)
        assert batch < 16 * single


class TestTrace:
    def test_mac_word_consistency(self):
        """Input words match the im2col volume of the mapping."""
        layer = ConvLayer("c", 27, 27, 96, 256, 5, 5, padding=2)
        mapping = WeightStationaryMapping(layer, 64, 256)
        trace = layer_trace(mapping)
        expected = mapping.folds * mapping.pixels * mapping.rows_used
        assert trace.inputs.words == expected

    def test_fc_has_no_overlap_fetches(self):
        layer = ConvLayer("fc", 1, 1, 4096, 1000, 1, 1, kind="fc")
        trace = layer_trace(WeightStationaryMapping(layer, 64, 256))
        assert trace.inputs.rand_fetches == 0

    def test_spatial_conv_has_overlap_fetches(self):
        layer = ConvLayer("c", 27, 27, 96, 256, 5, 5, padding=2)
        trace = layer_trace(WeightStationaryMapping(layer, 64, 256))
        assert trace.inputs.rand_fetches > 0

    def test_psums_appear_with_row_folds(self):
        layer = ConvLayer("c", 13, 13, 384, 384, 3, 3, padding=1)
        trace = layer_trace(WeightStationaryMapping(layer, 64, 256))
        assert trace.psums.words > 0

    @given(st.integers(min_value=1, max_value=8))
    @settings(max_examples=10, deadline=None)
    def test_words_scale_with_batch(self, batch):
        layer = ConvLayer("c", 13, 13, 64, 64, 3, 3, padding=1)
        mapping = WeightStationaryMapping(layer, 64, 256)
        t1 = layer_trace(mapping, 1)
        tb = layer_trace(mapping, batch)
        assert tb.inputs.words == batch * t1.inputs.words


class TestSpmModels:
    def test_shift_rotation_cost_clamped(self):
        spm = ShiftSpm(capacity_bytes=32 * KB, banks=256)
        huge = spm.jump_cost(1e9)
        assert huge == pytest.approx(spm.lane_words * spm.cell_time)

    def test_random_bulk_transfer_line_amortised(self):
        spm = RandomSpm(28 * MB, 256, 1 * NS, 1 * NS, 0.1 * NS,
                        line_bytes=64, pipelined=True)
        assert spm.bulk_transfer_time(640) == pytest.approx(10 * 0.1 * NS)

    def test_non_pipelined_pays_latency(self):
        spm = RandomSpm(28 * MB, 256, 3 * NS, 3 * NS, 3 * NS,
                        line_bytes=16, pipelined=False)
        assert spm.random_access_cost() == pytest.approx(3 * NS)

    def test_pipelined_pays_conflict_slots(self):
        spm = RandomSpm(28 * MB, 256, 1 * NS, 1 * NS, 0.103 * NS,
                        line_bytes=64, pipelined=True)
        assert spm.random_access_cost() == pytest.approx(
            0.103 * NS * RandomSpm.UNSCHEDULED_CONFLICT_SLOTS
        )


class TestHidingFraction:
    """Prefetch-depth hiding follows the Fig 24 shape."""

    @staticmethod
    def _hetero(depth, pipelined=True):
        from repro.systolic.memsys import HeterogeneousSpm

        shift = ShiftSpm(capacity_bytes=32 * KB, banks=256)
        random = RandomSpm(28 * MB, 256, 1 * NS, 1 * NS, 0.103 * NS,
                           line_bytes=64, pipelined=pipelined)
        return HeterogeneousSpm(
            input_shift=shift, weight_shift=shift, output_shift=shift,
            random=random, prefetch_depth=depth,
        )

    def test_monotone_in_prefetch_depth(self):
        fractions = [self._hetero(a).hiding_fraction()
                     for a in range(1, 8)]
        assert fractions == sorted(fractions)
        assert all(f1 < f2 for f1, f2 in zip(fractions[1:], fractions[2:]))

    def test_bounded_below_one(self):
        for depth in range(1, 10):
            assert 0.0 <= self._hetero(depth).hiding_fraction() < 1.0

    def test_no_prefetch_pipelined_hides_half(self):
        assert self._hetero(1).hiding_fraction() == pytest.approx(0.5)

    def test_no_prefetch_conventional_hides_nothing(self):
        hetero = self._hetero(1, pipelined=False)
        assert hetero.hiding_fraction() == 0.0

    def test_diminishing_returns(self):
        """Past a=2 each extra lookahead step buys less than the last
        (a=1 -> 2 crosses off the hardware double-buffer baseline, so
        the geometric tail starts at a=2)."""
        gains = []
        for depth in range(3, 8):
            gains.append(self._hetero(depth).hiding_fraction()
                         - self._hetero(depth - 1).hiding_fraction())
        assert gains == sorted(gains, reverse=True)
        assert all(g > 0 for g in gains)
