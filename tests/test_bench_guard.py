"""Statistical bench-guard: robust baselines, noise-adjusted gating.

Drives ``tools/bench_guard.py`` as a module (it is CI's entry point)
against synthetic histories: the median-of-N baseline must absorb a
single noisy historical point in either direction, the threshold must
widen with a cell's measured noise, and ``--block`` must turn a real
regression into a non-zero exit while the default stays warn-only.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_guard",
    Path(__file__).parent.parent / "tools" / "bench_guard.py",
)
bench_guard = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_guard)


def point(rps, scenario="bursty", n=10000, variant=""):
    out = {"scenario": scenario, "n_requests": n, "rps": rps}
    if variant:
        out["variant"] = variant
    return out


@pytest.fixture
def history(tmp_path):
    def write(name, points):
        path = tmp_path / name
        path.write_text(json.dumps(points))
        return str(path)
    return write


STEADY = [point(rps) for rps in (200000.0, 205000.0, 195000.0,
                                 202000.0, 198000.0)]


class TestStatistics:
    def test_median_absorbs_one_noisy_low_point(self, history, capsys):
        # one historical 90k dip must not drag the baseline down and
        # mask a real regression on the fresh side
        noisy = STEADY[:3] + [point(90000.0)] + STEADY[3:]
        code = bench_guard.main([
            history("base.json", noisy),
            history("fresh.json", noisy + [point(120000.0)]),
            "--block",
        ])
        assert code == 1
        assert "::warning" in capsys.readouterr().out

    def test_median_absorbs_one_noisy_high_point(self, history, capsys):
        # ...and one historical 500k spike must not manufacture one
        spiky = STEADY + [point(500000.0)]
        code = bench_guard.main([
            history("base.json", spiky),
            history("fresh.json", spiky + [point(201000.0)]),
            "--block", "--window", "6",
        ])
        assert code == 0
        assert "::warning" not in capsys.readouterr().out

    def test_noise_widens_threshold(self, history, capsys):
        # rel-MAD ~10%: a 25% drop stays under the 3-MAD threshold
        jittery = [point(rps) for rps in (200000.0, 180000.0, 220000.0,
                                          160000.0, 240000.0)]
        code = bench_guard.main([
            history("base.json", jittery),
            history("fresh.json", jittery + [point(150000.0)]),
            "--block",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "::warning" not in out

    def test_quiet_cell_keeps_base_threshold(self, history, capsys):
        code = bench_guard.main([
            history("base.json", STEADY),
            history("fresh.json", STEADY + [point(150000.0)]),
            "--block",
        ])
        assert code == 1  # 25% drop on a ~1%-noise cell trips


class TestGating:
    def test_default_is_warn_only(self, history, capsys):
        code = bench_guard.main([
            history("base.json", STEADY),
            history("fresh.json", STEADY + [point(50000.0)]),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "::warning" in out
        assert "non-blocking" in out

    def test_block_mode_exits_nonzero(self, history):
        code = bench_guard.main([
            history("base.json", STEADY),
            history("fresh.json", STEADY + [point(50000.0)]),
            "--block",
        ])
        assert code == 1

    def test_identical_files_compare_clean(self, history, capsys):
        base = history("base.json", STEADY)
        code = bench_guard.main([base, base, "--block"])
        assert code == 0
        assert "no serving-path regressions" in capsys.readouterr().out

    def test_unbenchmarked_cell_skipped(self, history, capsys):
        # fresh side re-ran only the diurnal cell; the stale bursty
        # copy must not be compared against itself
        base_points = STEADY + [point(120000.0, scenario="diurnal")]
        fresh = base_points + [point(118000.0, scenario="diurnal")]
        code = bench_guard.main([
            history("base.json", base_points),
            history("fresh.json", fresh), "--block",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "bursty/10000" not in out
        assert "diurnal/10000" in out


class TestRobustness:
    def test_missing_baseline_is_noop(self, history, tmp_path, capsys):
        code = bench_guard.main([
            str(tmp_path / "absent.json"),
            history("fresh.json", STEADY),
        ])
        assert code == 0
        assert "no baseline points" in capsys.readouterr().out

    def test_empty_fresh_is_noop(self, history, capsys):
        code = bench_guard.main([
            history("base.json", STEADY),
            history("fresh.json", []),
        ])
        assert code == 0
        assert "bench likely did not run" in capsys.readouterr().out

    def test_plain_and_variant_cells_separate(self, history, capsys):
        base_points = [
            # the pre-label "requests" spelling still resolves
            {"scenario": "bursty", "requests": 10000,
             "rps": 200000.0},
            point(190000.0, variant="persist"),
        ]
        fresh = base_points + [point(50000.0, variant="persist")]
        code = bench_guard.main([
            history("base.json", base_points),
            history("fresh.json", fresh), "--block",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "bursty/10000/persist" in out

    def test_geo_cell_guarded_independently(self, history, capsys):
        # a geo regression must trip only its own geo/<policy> cell,
        # never the plain cell it shares a scenario label with
        base_points = STEADY + [
            point(90000.0, scenario="diurnal", n=100000,
                  variant="geo/follow_sun"),
        ]
        fresh = base_points + [
            point(40000.0, scenario="diurnal", n=100000,
                  variant="geo/follow_sun"),
            point(201000.0),
        ]
        code = bench_guard.main([
            history("base.json", base_points),
            history("fresh.json", fresh), "--block",
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "diurnal/100000/geo/follow_sun" in out
        assert "::warning" in out
        # the plain bursty cell compared clean in the same run
        assert "bursty/10000: " in out and \
            "bursty/10000/geo" not in out

    def test_bad_window_rejected(self, history):
        with pytest.raises(SystemExit):
            bench_guard.main([
                history("base.json", STEADY),
                history("fresh.json", STEADY),
                "--window", "0",
            ])
