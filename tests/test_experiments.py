"""Integration tests: the paper's headline shapes must reproduce.

These run the same experiment functions the benchmarks print, and
assert the qualitative targets recorded in EXPERIMENTS.md.  Bands are
deliberately loose: the substrate is an analytical simulator, not the
authors' testbed; who-wins and rough factors are what must hold.
"""

import pytest

from repro.eval import (
    fig5_homogeneous,
    fig7_heterogeneous,
    fig9_htree_breakdown,
    fig12_subbank_validation,
    fig14_design_space,
    fig16_access_energy,
    fig18_single_speedup,
    fig19_batch_speedup,
    fig20_single_energy,
    fig21_batch_energy,
    fig22_shift_capacity,
    fig24_prefetch_depth,
    fig25_write_latency,
    geomean,
    tab1_technologies,
    tab4_configurations,
)


@pytest.fixture(scope="module")
def single_speedups():
    return fig18_single_speedup()


@pytest.fixture(scope="module")
def batch_speedups():
    return fig19_batch_speedup()


class TestHeadline:
    def test_smart_single_image_factor(self, single_speedups):
        """Paper: SMART ~3.9x SuperNPU single-image (we accept 2.5-5x)."""
        smart = geomean([r["SMART"] for r in single_speedups])
        shift = geomean([r["SHIFT"] for r in single_speedups])
        assert 2.5 < smart / shift < 5.0

    def test_smart_batch_factor(self, batch_speedups):
        """Paper: SMART ~2.2x SuperNPU batch (we accept 1.5-3x)."""
        smart = geomean([r["SMART"] for r in batch_speedups])
        shift = geomean([r["SHIFT"] for r in batch_speedups])
        assert 1.5 < smart / shift < 3.0

    def test_supernpu_vs_tpu_single(self, single_speedups):
        """Paper: SuperNPU ~8.6x TPU single-image (we accept 5-15x)."""
        shift = geomean([r["SHIFT"] for r in single_speedups])
        assert 5.0 < shift < 15.0

    def test_scheme_ordering_single(self, single_speedups):
        """SRAM and Heter lose to SuperNPU; Pipe and SMART beat it."""
        g = {s: geomean([r[s] for r in single_speedups])
             for s in ("SHIFT", "SRAM", "Heter", "Pipe", "SMART")}
        assert g["SRAM"] < g["SHIFT"]
        assert g["Heter"] < g["SHIFT"]
        assert g["Pipe"] > g["SHIFT"]
        assert g["SMART"] >= g["Pipe"]

    def test_smart_gains_less_from_batch_than_supernpu(
            self, single_speedups, batch_speedups):
        """Sec 6.2: SuperNPU 2.5x from batching, SMART only ~1.35x."""
        smart_gain = (geomean([r["SMART"] for r in batch_speedups])
                      / geomean([r["SMART"] for r in single_speedups]))
        shift_gain = (geomean([r["SHIFT"] for r in batch_speedups])
                      / geomean([r["SHIFT"] for r in single_speedups]))
        assert shift_gain > smart_gain


class TestEnergy:
    def test_smart_cuts_energy_vs_supernpu(self):
        """Paper: -86% single-image (we accept -50% or better)."""
        rows = fig20_single_energy()
        smart = geomean([r["SMART"] for r in rows])
        shift = geomean([r["SHIFT"] for r in rows])
        assert smart < 0.5 * shift

    def test_smart_tiny_fraction_of_tpu(self):
        """Paper: SMART ~1.9% of TPU single-image energy.  Our TPU
        baseline is relatively cheaper (uniform DRAM exemption), so the
        reproduced band is <35% — see EXPERIMENTS.md."""
        rows = fig20_single_energy()
        assert geomean([r["SMART"] for r in rows]) < 0.35

    def test_batch_energy_direction(self):
        rows = fig21_batch_energy()
        smart = geomean([r["SMART"] for r in rows])
        shift = geomean([r["SHIFT"] for r in rows])
        assert smart < shift


class TestSubstrateFigures:
    def test_fig5_only_vtm_competitive(self):
        rows = {r["spm"]: r["norm_latency"] for r in fig5_homogeneous()}
        assert rows["SRAM"] > 5.0       # >= 5x slower (Sec 3)
        assert rows["SNM"] > 5.0
        assert rows["VTM"] < 1.3        # the only near-competitive one
        assert rows["ideal-0.02ns"] < rows["VTM"]

    def test_fig7_ordering(self):
        rows = {r["spm"]: r["norm_latency"] for r in fig7_heterogeneous()}
        assert rows["hVTM"] < 1.0               # -70% in the paper
        assert rows["hVTM+p"] < rows["hVTM"]    # prefetching helps more
        assert rows["hSRAM"] > 2.0              # 3.36x in the paper
        assert rows["hMRAM"] > 1.0
        assert rows["hSNM"] > 1.0

    def test_fig9_htree_dominates(self):
        row = fig9_htree_breakdown()
        assert row["htree_latency_share"] > 0.7   # paper: 84%
        assert row["htree_energy_share"] > 0.4    # paper: 49%
        assert 2.0 < row["total_latency_ns"] < 6.0

    def test_fig12_conservative_validation(self):
        for row in fig12_subbank_validation():
            assert 0.0 <= row["latency_err"] <= 0.20
            assert 0.0 <= row["energy_err"] <= 0.25

    def test_fig14_tradeoffs(self):
        rows = fig14_design_space()
        assert rows[-1]["frequency_ghz"] == pytest.approx(9.707, rel=0.01)
        assert rows[-1]["leakage_mw"] > rows[0]["leakage_mw"]

    def test_fig16_shift_energy_hierarchy(self):
        rows = {r["array"]: r["access_energy_pj"]
                for r in fig16_access_energy()}
        assert rows["384KB-SHIFT"] > rows["96KB-SHIFT"] >= rows["RANDOM"]
        assert rows["128B-SHIFT"] < 0.01 * rows["96KB-SHIFT"]


class TestSensitivity:
    def test_fig22_small_shift_hurts(self):
        rows = {r["setting"]: r for r in fig22_shift_capacity((16, 32))}
        assert (rows[16]["single_speedup"]
                <= rows[32]["single_speedup"] * 1.001)

    def test_fig24_prefetch_shape(self):
        rows = {r["setting"]: r for r in fig24_prefetch_depth((1, 3, 5))}
        assert rows[1]["single_speedup"] < rows[3]["single_speedup"]
        # diminishing returns past a=3
        gain_late = (rows[5]["single_speedup"]
                     / rows[3]["single_speedup"])
        gain_early = (rows[3]["single_speedup"]
                      / rows[1]["single_speedup"])
        assert gain_late < gain_early

    def test_fig25_write_latency_collapse(self):
        rows = {r["setting"]: r for r in fig25_write_latency()}
        assert rows[2.0]["single_speedup"] < 0.6 * rows[0.11][
            "single_speedup"]
        assert rows[3.0]["single_speedup"] < rows[2.0]["single_speedup"]


class TestTables:
    def test_table1_complete(self):
        rows = tab1_technologies()
        assert len(rows) == 5

    def test_table4_peaks(self):
        rows = {r["name"]: r for r in tab4_configurations()}
        assert rows["TPU"]["peak_tmacs"] == pytest.approx(45.9, rel=0.05)
        assert rows["SuperNPU"]["peak_tmacs"] == pytest.approx(862,
                                                               rel=0.05)
