"""Unit-constant and conversion tests."""


import pytest

from repro import units
from repro.units import f_squared, to_ghz, to_mb, to_ns, to_pj, to_ps


def test_time_scale_chain():
    assert units.NS == 1e-9
    assert units.PS * 1000 == pytest.approx(units.NS)
    assert units.FS * 1000 == pytest.approx(units.PS)


def test_conversions_roundtrip():
    assert to_ns(5e-9) == pytest.approx(5.0)
    assert to_ps(5e-9) == pytest.approx(5000.0)
    assert to_ghz(52.6e9) == pytest.approx(52.6)
    assert to_pj(3e-12) == pytest.approx(3.0)
    assert to_mb(28 * units.MB) == pytest.approx(28.0)


def test_flux_quantum_value():
    assert units.PHI0 == pytest.approx(2.0678e-15, rel=1e-4)


def test_f_squared():
    assert f_squared(1e-6) == pytest.approx(1e-12)
    with pytest.raises(ValueError):
        f_squared(0.0)


def test_byte_scales():
    assert units.MB == 1024 * units.KB
    assert units.GB == 1024 * units.MB
