"""Tests for the persistent JSONL run store."""

import pytest

from repro.runtime import RunRecord, RunStore


@pytest.fixture
def store(tmp_path):
    return RunStore(tmp_path / "runs.jsonl")


def _record(run_id: str, experiment: str = "fig18",
            elapsed_s: float = 1.0) -> RunRecord:
    return RunRecord(run_id=run_id, experiment=experiment,
                     params={"a": 1}, started=100.0,
                     elapsed_s=elapsed_s, cached=False, error=None,
                     row_count=6)


class TestRoundTrip:
    def test_append_and_read_back(self, store):
        record = _record("abc123")
        store.append(record)
        assert store.records() == [record]

    def test_survives_reopen(self, tmp_path):
        RunStore(tmp_path / "runs.jsonl").append(_record("abc"))
        assert RunStore(tmp_path / "runs.jsonl").records()[0].run_id == \
            "abc"

    def test_error_field_round_trips(self, store):
        record = RunRecord(run_id="x", experiment="fig18",
                           error="ValueError: boom")
        store.append(record)
        assert store.records()[0].error == "ValueError: boom"


class TestQueries:
    def test_recent_is_newest_first_and_limited(self, store):
        for i in range(5):
            store.append(_record(f"run{i}"))
        recent = store.recent(limit=3)
        assert [r.run_id for r in recent] == ["run4", "run3", "run2"]

    def test_for_experiment_filters(self, store):
        store.append(_record("a", experiment="fig18"))
        store.append(_record("b", experiment="fig19"))
        store.append(_record("c", experiment="fig18"))
        assert [r.run_id for r in store.for_experiment("fig18")] == \
            ["a", "c"]

    def test_len(self, store):
        assert len(store) == 0
        store.append(_record("a"))
        assert len(store) == 1


class TestRobustness:
    def test_missing_file_is_empty(self, store):
        assert store.records() == []
        assert store.recent() == []

    def test_malformed_lines_skipped(self, store):
        store.append(_record("good1"))
        with store.path.open("a") as handle:
            handle.write("{truncated json\n")
            handle.write("\n")
        store.append(_record("good2"))
        assert [r.run_id for r in store.records()] == ["good1", "good2"]

    def test_clear(self, store):
        store.append(_record("a"))
        store.append(_record("b"))
        assert store.clear() == 2
        assert store.records() == []
