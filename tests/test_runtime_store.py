"""Tests for the persistent JSONL run store."""

import pytest

from repro.runtime import RunRecord, RunStore


@pytest.fixture
def store(tmp_path):
    return RunStore(tmp_path / "runs.jsonl")


def _record(run_id: str, experiment: str = "fig18",
            elapsed_s: float = 1.0) -> RunRecord:
    return RunRecord(run_id=run_id, experiment=experiment,
                     params={"a": 1}, started=100.0,
                     elapsed_s=elapsed_s, cached=False, error=None,
                     row_count=6)


class TestRoundTrip:
    def test_append_and_read_back(self, store):
        record = _record("abc123")
        store.append(record)
        assert store.records() == [record]

    def test_survives_reopen(self, tmp_path):
        RunStore(tmp_path / "runs.jsonl").append(_record("abc"))
        assert RunStore(tmp_path / "runs.jsonl").records()[0].run_id == \
            "abc"

    def test_error_field_round_trips(self, store):
        record = RunRecord(run_id="x", experiment="fig18",
                           error="ValueError: boom")
        store.append(record)
        assert store.records()[0].error == "ValueError: boom"


class TestQueries:
    def test_recent_is_newest_first_and_limited(self, store):
        for i in range(5):
            store.append(_record(f"run{i}"))
        recent = store.recent(limit=3)
        assert [r.run_id for r in recent] == ["run4", "run3", "run2"]

    def test_for_experiment_filters(self, store):
        store.append(_record("a", experiment="fig18"))
        store.append(_record("b", experiment="fig19"))
        store.append(_record("c", experiment="fig18"))
        assert [r.run_id for r in store.for_experiment("fig18")] == \
            ["a", "c"]

    def test_len(self, store):
        assert len(store) == 0
        store.append(_record("a"))
        assert len(store) == 1


class TestSingleParse:
    """The ledger is parsed once per change, not once per query."""

    @pytest.fixture
    def parse_counter(self, monkeypatch):
        import repro.runtime.store as store_module
        counter = {"parses": 0}
        original = store_module.RunRecord.from_json.__func__

        def counting(cls, line):
            counter["parses"] += 1
            return original(cls, line)

        monkeypatch.setattr(store_module.RunRecord, "from_json",
                            classmethod(counting))
        return counter

    def test_repeated_records_parse_once(self, store, parse_counter):
        for i in range(10):
            store.append(_record(f"run{i}"))
        parse_counter["parses"] = 0
        first = store.records()
        assert parse_counter["parses"] == 10
        for _ in range(5):
            assert store.records() == first
            assert len(store) == 10
        assert parse_counter["parses"] == 10  # still the one pass

    def test_append_extends_snapshot_without_reparse(self, store,
                                                     parse_counter):
        store.append(_record("a"))
        store.records()
        parse_counter["parses"] = 0
        store.append(_record("b"))
        assert [r.run_id for r in store.records()] == ["a", "b"]
        assert parse_counter["parses"] == 0

    def test_external_write_invalidates_snapshot(self, store):
        store.append(_record("a"))
        store.records()
        # another process appends behind this store's back
        other = RunStore(store.path)
        other.append(_record("b"))
        assert [r.run_id for r in store.records()] == ["a", "b"]

    def test_recent_on_cold_store_reads_only_the_tail(self, tmp_path,
                                                      parse_counter):
        writer = RunStore(tmp_path / "runs.jsonl")
        for i in range(500):
            writer.append(_record(f"run{i:03d}"))
        cold = RunStore(tmp_path / "runs.jsonl")
        cold._CHUNK = 4096  # force several backward blocks
        parse_counter["parses"] = 0
        recent = cold.recent(limit=3)
        assert [r.run_id for r in recent] == ["run499", "run498",
                                              "run497"]
        assert parse_counter["parses"] <= 3

    def test_tail_read_spans_chunk_boundaries(self, tmp_path):
        writer = RunStore(tmp_path / "runs.jsonl")
        for i in range(50):
            writer.append(_record(f"run{i:02d}"))
        cold = RunStore(tmp_path / "runs.jsonl")
        cold._CHUNK = 7  # smaller than one line: every line straddles
        assert [r.run_id for r in cold.recent(limit=50)] == \
            [f"run{i:02d}" for i in reversed(range(50))]

    def test_tail_read_skips_malformed_lines(self, tmp_path):
        writer = RunStore(tmp_path / "runs.jsonl")
        writer.append(_record("good1"))
        with writer.path.open("a") as handle:
            handle.write("{truncated json\n")
        writer.append(_record("good2"))
        cold = RunStore(tmp_path / "runs.jsonl")
        assert [r.run_id for r in cold.recent(limit=2)] == \
            ["good2", "good1"]

    def test_recent_matches_records_tail(self, store):
        for i in range(30):
            store.append(_record(f"run{i}"))
        expected = list(reversed(store.records()[-7:]))
        cold = RunStore(store.path)
        assert cold.recent(limit=7) == expected


class TestRobustness:
    def test_missing_file_is_empty(self, store):
        assert store.records() == []
        assert store.recent() == []

    def test_malformed_lines_skipped(self, store):
        store.append(_record("good1"))
        with store.path.open("a") as handle:
            handle.write("{truncated json\n")
            handle.write("\n")
        store.append(_record("good2"))
        assert [r.run_id for r in store.records()] == ["good1", "good2"]

    def test_clear(self, store):
        store.append(_record("a"))
        store.append(_record("b"))
        assert store.clear() == 2
        assert store.records() == []
