"""Tests for the composable analytics blocks and history loaders."""

import json

import pytest

from repro.errors import ConfigError
from repro.eval.blocks import (
    AggregateBlock,
    FilterBlock,
    NormalizeBlock,
    Pipeline,
    PivotBlock,
    SortBlock,
    bench_cell,
    bench_label,
    load_bench,
    load_ledger,
    load_rows,
)
from repro.runtime import RunRecord, RunStore

ROWS = [
    {"scenario": "bursty", "policy": "fixed", "rps": 100.0},
    {"scenario": "bursty", "policy": "timeout", "rps": 80.0},
    {"scenario": "diurnal", "policy": "fixed", "rps": 60.0},
    {"scenario": "diurnal", "policy": "timeout", "rps": 90.0},
]


class TestFilter:
    def test_membership(self):
        out = FilterBlock("scenario", ["bursty"]).apply(ROWS)
        assert [r["rps"] for r in out] == [100.0, 80.0]

    def test_scalar_value_promoted(self):
        out = FilterBlock("policy", "fixed").apply(ROWS)
        assert len(out) == 2

    def test_exclude_inverts(self):
        out = FilterBlock("scenario", "bursty", exclude=True).apply(ROWS)
        assert {r["scenario"] for r in out} == {"diurnal"}

    def test_predicate(self):
        out = FilterBlock(predicate=lambda r: r["rps"] > 85).apply(ROWS)
        assert [r["rps"] for r in out] == [100.0, 90.0]

    def test_needs_exactly_one_selector(self):
        with pytest.raises(ConfigError):
            FilterBlock()
        with pytest.raises(ConfigError):
            FilterBlock("a", [1], predicate=lambda r: True)


class TestAggregate:
    def test_grouped_metrics(self):
        out = AggregateBlock(
            by=("scenario",),
            metrics={"rps": "mean", "n": ("rps", "count")},
        ).apply(ROWS)
        assert out == [
            {"scenario": "bursty", "rps": 90.0, "n": 2},
            {"scenario": "diurnal", "rps": 75.0, "n": 2},
        ]

    def test_renamed_source_column(self):
        out = AggregateBlock(
            by=("scenario",), metrics={"best": ("rps", "max")},
        ).apply(ROWS)
        assert out[0]["best"] == 100.0

    def test_median_and_mad_are_robust(self):
        rows = [{"g": 1, "v": x} for x in (10.0, 11.0, 12.0, 500.0)]
        out = AggregateBlock(by=("g",), metrics={
            "v": "median", "spread": ("v", "mad")}).apply(rows)
        assert out[0]["v"] == 11.5
        assert out[0]["spread"] == 1.0

    def test_non_numeric_group_drops_metric(self):
        rows = [{"g": 1, "v": "text"}]
        out = AggregateBlock(by=("g",), metrics={"v": "mean"}).apply(rows)
        assert out == [{"g": 1}]

    def test_unknown_aggregator_rejected(self):
        with pytest.raises(ConfigError):
            AggregateBlock(by=("g",), metrics={"v": "mode"})


class TestNormalize:
    def test_per_group_baseline(self):
        out = NormalizeBlock("rps", baseline={"policy": "fixed"},
                             by=("scenario",)).apply(ROWS)
        ratios = {(r["scenario"], r["policy"]): r.get("rps_norm")
                  for r in out}
        assert ratios[("bursty", "timeout")] == pytest.approx(0.8)
        assert ratios[("diurnal", "timeout")] == pytest.approx(1.5)
        assert ratios[("bursty", "fixed")] == pytest.approx(1.0)

    def test_missing_baseline_passes_through(self):
        out = NormalizeBlock("rps", baseline={"policy": "edf"}).apply(ROWS)
        assert all("rps_norm" not in r for r in out)


class TestPivot:
    def test_wide_rows(self):
        out = PivotBlock("scenario", column="policy",
                         value="rps").apply(ROWS)
        assert out == [
            {"scenario": "bursty", "fixed": 100.0, "timeout": 80.0},
            {"scenario": "diurnal", "fixed": 60.0, "timeout": 90.0},
        ]

    def test_collisions_resolved_by_aggregate(self):
        rows = ROWS + [{"scenario": "bursty", "policy": "fixed",
                        "rps": 200.0}]
        out = PivotBlock("scenario", column="policy", value="rps",
                         aggregate="mean").apply(rows)
        assert out[0]["fixed"] == 150.0


class TestPipeline:
    def test_chains_blocks(self):
        out = Pipeline([
            FilterBlock("policy", "fixed"),
            AggregateBlock(by=(), metrics={"rps": "sum"}),
        ]).apply(ROWS)
        assert out == [{"rps": 160.0}]

    def test_sort_block(self):
        out = SortBlock("rps", reverse=True).apply(ROWS)
        assert [r["rps"] for r in out] == [100.0, 90.0, 80.0, 60.0]


class TestBenchLoader:
    def test_unlabelled_point_rejected(self):
        # unlabelled points were migrated out of the committed
        # history; a fresh one is a malformed write, not legacy data
        with pytest.raises(ConfigError, match="scenario"):
            bench_cell({"requests": 10000, "rps": 1.0})
        with pytest.raises(ConfigError, match="n_requests"):
            bench_cell({"scenario": "bursty", "rps": 1.0})

    def test_legacy_requests_spelling_accepted(self):
        assert bench_cell({"scenario": "bursty", "requests": 10000,
                           "rps": 1.0}) == ("bursty", 10000, "")

    def test_label_includes_variant(self):
        assert bench_label(("diurnal", 10000, "forecast")) == \
            "diurnal/10000/forecast"
        assert bench_label(("bursty", 100000, "")) == "bursty/100000"

    def test_normalises_mixed_history(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps([
            {"scenario": "bursty", "requests": 10000, "rps": 1.0},
            {"scenario": "bursty", "n_requests": 10000, "rps": 2.0},
            {"scenario": "bursty", "n_requests": 10000,
             "variant": "persist", "rps": 3.0},
            {"not": "a point"},
        ]))
        rows = load_bench(path)
        assert [r["cell"] for r in rows] == \
            ["bursty/10000", "bursty/10000", "bursty/10000/persist"]
        assert [r["cell_seq"] for r in rows] == [0, 1, 0]
        assert all("requests" not in r for r in rows)
        assert rows[0]["n_requests"] == 10000

    def test_unlabelled_history_rejected(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps([{"requests": 10000, "rps": 1.0}]))
        with pytest.raises(ConfigError, match="scenario"):
            load_bench(path)

    def test_missing_file_loads_empty(self, tmp_path):
        assert load_bench(tmp_path / "absent.json") == []

    def test_committed_bench_loads(self):
        rows = load_bench("BENCH_serving.json")
        assert rows, "committed bench history must parse"
        assert {"cell", "seq", "cell_seq", "rps"} <= set(rows[0])


class TestLedgerLoader:
    def test_hoists_scalar_params(self, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        store.append(RunRecord(
            run_id="a", experiment="fig18",
            params={"frequency": 2.0, "grid": [1, 2]},
            elapsed_s=1.5, row_count=6,
        ))
        rows = load_ledger(store)
        assert rows[0]["frequency"] == 2.0
        assert "grid" not in rows[0]          # non-scalar stays nested
        assert rows[0]["params"]["grid"] == [1, 2]

    def test_param_never_clobbers_record_column(self, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        store.append(RunRecord(run_id="a", experiment="fig18",
                               params={"experiment": "spoof"}))
        rows = load_ledger(store)
        assert rows[0]["experiment"] == "fig18"


class TestRowsLoader:
    def test_flat_array(self, tmp_path):
        path = tmp_path / "rows.json"
        path.write_text(json.dumps(ROWS))
        assert load_rows(path) == ROWS

    def test_sweep_results_flattened(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps([{
            "experiment": "design_space",
            "params": {"frequency": 2.0},
            "rows": [{"latency_us": 10.0}, {"latency_us": 12.0}],
        }]))
        rows = load_rows(path)
        assert len(rows) == 2
        assert rows[0] == {"experiment": "design_space",
                           "frequency": 2.0, "latency_us": 10.0}

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigError):
            load_rows(tmp_path / "absent.json")

    def test_non_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json")
        with pytest.raises(ConfigError):
            load_rows(path)
