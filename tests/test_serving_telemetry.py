"""Telemetry sink: neutrality property + trace semantics.

The observability contract is that attaching a :class:`Telemetry`
sink to a run is a *pure observation*: the engine never reads the
sink, so every serving observable — per-request latency and energy
tuples, shed sets, batch records, scale trajectories — must stay
bit-identical to the same run with telemetry off.  The neutrality
matrix here covers the stock scenario x policy cells plus the
control-plane features whose handlers carry telemetry hooks
(autoscaling, SLO shedding, failure redispatch, stealing, EDF flush).
The rest of the suite pins the trace itself: event/counter semantics,
the metrics timeline, and the JSONL save/load round trip.
"""

import pytest

from repro.errors import ConfigError
from repro.serving import (
    AutoscalePolicy,
    FailurePlan,
    LayerMemoCache,
    ServingSimulator,
    TRACE_SCHEMA,
    Telemetry,
    generate_trace,
    get_scenario,
    load_trace,
    make_policy,
    make_scale,
)
from repro.serving.experiments import make_slo
from repro.serving.policies import WorkStealPolicy, make_flush

#: One shared memo: layer simulations are identical across cells.
SHARED = LayerMemoCache()


def run_cell(scenario_name, policy_name="fixed",
             dispatch="round_robin", n=100, seed=5,
             telemetry=None, **kwargs):
    scenario = get_scenario(scenario_name)
    sim = ServingSimulator("SMART", replicas=2,
                           policy=make_policy(policy_name),
                           dispatch=dispatch, cache=SHARED,
                           telemetry=telemetry, **kwargs)
    rate = scenario.load * sim.capacity_rps(scenario)
    trace = generate_trace(scenario, rate, n, seed)
    failures = (FailurePlan(count=scenario.faults, seed=seed)
                if scenario.faults and sim.failures is None else None)
    return sim.run(trace, scenario=scenario.name, rate=rate,
                   failures=failures)


def assert_neutral(scenario, policy="fixed", **kwargs):
    """The observable outcome must not depend on the sink."""
    plain = run_cell(scenario, policy, **kwargs)
    telemetry = Telemetry(tick=200e-6)
    traced = run_cell(scenario, policy, telemetry=telemetry, **kwargs)
    assert traced.latencies == plain.latencies  # exact, not approx
    assert traced.energy_per_request == plain.energy_per_request
    assert traced.shed == plain.shed
    assert traced.scale_events == plain.scale_events
    assert traced.stolen == plain.stolen
    assert [(b.replica, b.start, b.done, b.size, b.energy)
            for b in traced.batches] \
        == [(b.replica, b.start, b.done, b.size, b.energy)
            for b in plain.batches]
    return telemetry


class TestNeutrality:
    @pytest.mark.parametrize("scenario", ["steady", "bursty", "ramp",
                                          "diurnal", "hot-model"])
    @pytest.mark.parametrize("policy", ["fixed", "timeout"])
    def test_stock_cells_bit_identical(self, scenario, policy):
        assert_neutral(scenario, policy)

    def test_autoscale_cell_bit_identical(self):
        telemetry = assert_neutral(
            "diurnal",
            autoscale=AutoscalePolicy(min_replicas=1, max_replicas=4),
        )
        assert telemetry.counters["scale_ups"] > 0

    def test_predictive_scale_cell_bit_identical(self):
        assert_neutral(
            "diurnal",
            autoscale=make_scale("holt", AutoscalePolicy(
                min_replicas=1, max_replicas=4)),
        )

    def test_shed_cell_bit_identical(self):
        telemetry = assert_neutral(
            "overload", slo=make_slo(1500.0, shed_depth=16),
        )
        assert telemetry.counters["shed"] > 0

    def test_failure_cell_bit_identical(self):
        telemetry = assert_neutral("failure-storm")
        assert telemetry.counters["failures"] > 0
        assert telemetry.counters["recoveries"] > 0

    def test_steal_cell_bit_identical(self):
        assert_neutral("bursty", steal=WorkStealPolicy())

    def test_edf_flush_cell_bit_identical(self):
        assert_neutral("hot-model", flush=make_flush("edf"))

    def test_off_path_records_nothing(self):
        result = run_cell("steady", telemetry=None)
        assert result.latencies  # ran at all


class TestTrace:
    def test_event_counts_match_outcome(self):
        telemetry = Telemetry()
        result = run_cell("bursty", n=120, telemetry=telemetry)
        counters = telemetry.counters
        assert counters["runs"] == 1
        assert counters["arrivals"] == 120
        assert counters["batches_done"] == len(result.batches)
        assert counters["requests_done"] == \
            sum(b.size for b in result.batches)
        kinds = {row["ev"] for row in telemetry.rows}
        assert {"run", "arrival", "flush", "batch_done"} <= kinds
        assert not any(r["ev"] in ("run", "sample")
                       for r in telemetry.events())

    def test_events_carry_sim_time_and_labels(self):
        telemetry = Telemetry()
        run_cell("steady", n=40, telemetry=telemetry)
        flushes = [r for r in telemetry.events() if r["ev"] == "flush"]
        assert flushes
        for row in flushes:
            assert row["t"] >= 0.0
            assert row["replica"] >= 0
            assert row["model"]
            assert row["size"] >= 1
            assert row["cause"] in ("ready", "deadline", "drain",
                                    "redispatch", "steal", "waiting")

    def test_timeline_samples_without_autoscaler(self):
        telemetry = Telemetry(tick=200e-6)
        run_cell("bursty", n=150, telemetry=telemetry)
        samples = telemetry.samples()
        assert len(samples) >= 2
        for row in samples:
            assert set(row) >= {"t", "queues", "inflight", "in_system",
                                "replicas", "p95_s", "rate_rps",
                                "energy_j", "done"}
        # energy and completions accumulate monotonically
        energy = [s["energy_j"] for s in samples]
        assert energy == sorted(energy)
        assert samples[-1]["done"] <= 150

    def test_events_off_keeps_counters_and_samples(self):
        telemetry = Telemetry(events=False, tick=200e-6)
        run_cell("bursty", n=100, telemetry=telemetry)
        assert telemetry.counters["arrivals"] == 100
        assert not telemetry.events()
        assert telemetry.samples()

    def test_second_run_appends_with_new_run_boundary(self):
        telemetry = Telemetry()
        run_cell("steady", n=30, telemetry=telemetry)
        run_cell("bursty", n=30, telemetry=telemetry)
        boundaries = [r for r in telemetry.rows if r["ev"] == "run"]
        assert [b["run"] for b in boundaries] == [0, 1]
        assert telemetry.counters["runs"] == 2
        assert telemetry.counters["arrivals"] == 60

    def test_invalid_tick_rejected(self):
        with pytest.raises(ConfigError):
            Telemetry(tick=0.0)
        with pytest.raises(ConfigError):
            Telemetry(tick=-1e-3)


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        telemetry = Telemetry(tick=200e-6)
        run_cell("bursty", n=80, telemetry=telemetry)
        path = tmp_path / "trace.jsonl"
        telemetry.save(path)
        meta, rows = load_trace(path)
        assert meta["schema"] == TRACE_SCHEMA
        assert meta["rows"] == len(rows) == len(telemetry.rows)
        assert meta["counters"] == telemetry.counters
        assert rows == telemetry.rows

    def test_load_skips_malformed_lines(self, tmp_path):
        telemetry = Telemetry()
        run_cell("steady", n=20, telemetry=telemetry)
        path = tmp_path / "trace.jsonl"
        telemetry.save(path)
        with path.open("a") as handle:
            handle.write("{broken\n")
        _meta, rows = load_trace(path)
        assert len(rows) == len(telemetry.rows)

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigError):
            load_trace(tmp_path / "absent.jsonl")

    def test_load_headerless_file_raises(self, tmp_path):
        path = tmp_path / "bare.jsonl"
        path.write_text('{"t": 0.0, "ev": "arrival"}\n')
        with pytest.raises(ConfigError):
            load_trace(path)
