"""Tests for the network compiler driver and the CLI entry point."""

import json

import pytest

from repro.__main__ import EXPERIMENTS, main, run
from repro.compiler.driver import NetworkCompiler
from repro.cryomem import TABLE1
from repro.cryomem.validation import ARRAY_DEMO_DATA
from repro.models import get_model


class TestNetworkCompiler:
    def test_compiles_alexnet_with_ilp(self):
        compiler = NetworkCompiler()
        compilations = compiler.compile_network(get_model("AlexNet"))
        assert len(compilations) == 8  # 5 convs + 3 fcs
        assert all(c.solver == "ilp" for c in compilations)

    def test_effective_prefetch_matches_configuration(self):
        """The realised schedules express the configured lookahead."""
        compiler = NetworkCompiler(prefetch_depth=3)
        compilations = compiler.compile_network(get_model("AlexNet"))
        assert compiler.effective_prefetch_depth(compilations) == 3

    def test_no_prefetch_configuration(self):
        compiler = NetworkCompiler(prefetch_depth=1)
        compilations = compiler.compile_network(get_model("AlexNet"))
        assert compiler.effective_prefetch_depth(compilations) == 1

    def test_variable_budget_forces_greedy(self):
        compiler = NetworkCompiler(max_variables=10)
        result = compiler.compile_layer(
            get_model("AlexNet").compute_layers()[0]
        )
        assert result.solver == "greedy"

    def test_schedules_valid(self):
        compiler = NetworkCompiler()
        caps = {k: compiler.shift_capacity
                for k in ("alpha", "beta", "gamma", "delta")}
        for compilation in compiler.compile_network(get_model("AlexNet")):
            compilation.schedule.validate(caps, compiler.random_capacity)


class TestCli:
    def test_registry_covers_all_figures(self):
        expected = {f"fig{n}" for n in
                    (2, 5, 6, 7, 9, 12, 13, 14, 16, 17, 18, 19, 20, 21,
                     22, 23, 24, 25)}
        expected |= {"tab1", "tab2", "tab4"}
        assert expected == set(EXPERIMENTS)

    def test_list_mode(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig18" in out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2

    def test_runs_a_cheap_experiment(self, capsys):
        assert main(["tab2"]) == 0
        out = capsys.readouterr().out
        assert "ntron" in out

    def test_json_flag_emits_machine_readable_rows(self, capsys):
        assert main(["--json", "tab2"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["experiment"] == "tab2"
        assert {r["component"] for r in payload[0]["rows"]} >= {"ntron"}

    def test_second_run_is_served_from_cache(self, capsys):
        assert main(["tab2"]) == 0
        capsys.readouterr()
        assert main(["--json", "tab2"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["cached"] is True

    def test_serial_and_no_cache_flags(self, capsys):
        assert main(["--serial", "--no-cache", "tab2"]) == 0
        assert "ntron" in capsys.readouterr().out

    def test_bad_workers_value(self, capsys):
        assert main(["--workers", "zero", "tab2"]) == 2

    def test_workers_typo_is_not_a_flag(self, capsys):
        # `--workersX 4` must not silently configure anything
        assert main(["--workersX", "4", "tab2"]) == 2

    def test_empty_workers_value_rejected(self, capsys):
        assert main(["--workers=", "4", "tab2"]) == 2


@pytest.fixture
def empty_experiment():
    from repro.runtime import register_experiment, unregister_experiment

    register_experiment("_empty_test", lambda: [],
                        "returns no rows", figure=False)
    yield "_empty_test"
    unregister_experiment("_empty_test")


class TestZeroRows:
    def test_main_prints_notice_instead_of_crashing(self, capsys,
                                                    empty_experiment):
        assert main([empty_experiment]) == 0
        assert "(no rows)" in capsys.readouterr().out

    def test_run_helper_prints_notice(self, capsys, empty_experiment):
        run(empty_experiment)  # regression: used to raise IndexError
        assert "(no rows)" in capsys.readouterr().out


class TestSweepCli:
    def test_sweep_runs_grid_and_reports_hits_on_rerun(self, capsys):
        args = ["sweep", "design_space", "--param", "frequency=0.5,1"]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "design_space[frequency=0.5]" in cold
        assert "design_space[frequency=1]" in cold
        assert "2 job(s)" in cold
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "2 cache hit(s), 0 executed" in warm

    def test_sweep_json_output(self, capsys):
        assert main(["--json", "sweep", "design_space",
                     "--param", "frequency=1,2"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [p["params"]["frequency"] for p in payload] == [1, 2]
        assert all(p["error"] is None for p in payload)

    def test_sweep_unknown_experiment(self, capsys):
        assert main(["sweep", "fig99", "--param", "x=1"]) == 2

    def test_sweep_unknown_parameter(self, capsys):
        assert main(["sweep", "design_space",
                     "--param", "bogus=1"]) == 2

    def test_sweep_tuple_values(self, capsys):
        from repro.__main__ import _parse_param

        axis, values = _parse_param("sizes_kb=(16,32),(64,128)")
        assert axis == "sizes_kb"
        assert values == [(16, 32), (64, 128)]

    def test_sweep_bad_param_syntax(self, capsys):
        assert main(["sweep", "design_space", "--param",
                     "frequency"]) == 2

    def test_sweep_without_experiment(self, capsys):
        assert main(["sweep"]) == 2

    def test_failing_job_exits_1(self, capsys):
        # 20 GHz exceeds the nTron ceiling -> ConfigError inside the job
        assert main(["sweep", "design_space",
                     "--param", "frequency=1,20"]) == 1
        out = capsys.readouterr().out
        assert "ERROR: ConfigError" in out
        assert "1 error(s)" in out


class TestServeSimCli:
    FAST = ["--requests", "120", "--replicas", "1"]

    def test_default_grid_covers_scenarios_and_policies(self, capsys):
        assert main(["--json", "serve-sim", *self.FAST]) == 0
        rows = json.loads(capsys.readouterr().out)
        scenarios = {r["scenario"] for r in rows}
        policies = {r["policy"] for r in rows}
        assert len(scenarios) >= 3
        assert policies == {"fixed", "timeout"}
        assert len(rows) == len(scenarios) * len(policies)
        for row in rows:
            assert 0 < row["p50_us"] <= row["p95_us"] <= row["p99_us"]

    def test_single_scenario_and_policy(self, capsys):
        assert main(["--json", "serve-sim", "steady",
                     "--policy", "timeout", *self.FAST]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [(r["scenario"], r["policy"]) for r in rows] == [
            ("steady", "timeout")
        ]

    def test_table_output_mentions_memo(self, capsys):
        assert main(["serve-sim", "steady", "--policy", "fixed",
                     *self.FAST]) == 0
        out = capsys.readouterr().out
        assert "layer-memo" in out
        assert "p99_us" in out

    def test_unknown_scenario_rejected(self, capsys):
        assert main(["serve-sim", "tsunami", *self.FAST]) == 2
        assert "unknown scenario" in capsys.readouterr().out

    def test_unknown_policy_rejected(self, capsys):
        assert main(["serve-sim", "--policy", "adaptive"]) == 2
        assert "unknown batching policy" in capsys.readouterr().out

    def test_unknown_flag_rejected(self, capsys):
        assert main(["serve-sim", "--burst"]) == 2

    def test_bad_requests_value_rejected(self, capsys):
        assert main(["serve-sim", "--requests", "many"]) == 2
        assert main(["serve-sim", "--requests", "0"]) == 2

    def test_missing_value_rejected(self, capsys):
        assert main(["serve-sim", "--replicas"]) == 2

    def test_unknown_accelerator_rejected(self, capsys):
        assert main(["serve-sim", "--accelerator", "Quantum"]) == 2

    def test_autoscale_flag_swings_the_pool(self, capsys):
        assert main(["--json", "serve-sim", "diurnal",
                     "--policy", "timeout", "--autoscale", "1:4",
                     "--requests", "300", "--replicas", "1"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["replicas_peak"] > rows[0]["replicas_low"] == 1

    def test_slo_and_shed_flags_report_attainment(self, capsys):
        assert main(["--json", "serve-sim", "overload",
                     "--policy", "timeout", "--slo", "1500",
                     "--shed", "48", "--requests", "200"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert 0.0 <= rows[0]["slo_attain"] <= 1.0
        assert 0.0 <= rows[0]["shed_rate"] < 1.0

    def test_fail_flag_drops_replicas_mid_trace(self, capsys):
        assert main(["--json", "serve-sim", "steady",
                     "--policy", "timeout", "--fail", "1",
                     "--replicas", "2", "--requests", "200"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["replicas_low"] < rows[0]["replicas_peak"] == 2

    def test_bad_autoscale_spec_rejected(self, capsys):
        assert main(["serve-sim", "--autoscale", "fast"]) == 2
        assert "autoscale" in capsys.readouterr().out

    def test_shed_without_slo_rejected(self, capsys):
        assert main(["serve-sim", "steady", "--shed", "10",
                     *self.FAST]) == 2
        assert "SLO target" in capsys.readouterr().out

    def test_bad_slo_rejected(self, capsys):
        assert main(["serve-sim", "--slo", "soon"]) == 2
        assert main(["serve-sim", "--slo", "-5"]) == 2

    def test_resilience_flag_surfaces_counters(self, capsys):
        assert main(["--json", "serve-sim", "overload",
                     "--policy", "timeout",
                     "--resilience", "retry:timeout_us=500,budget=1",
                     "--requests", "200"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["resilience"] == "retry"
        assert rows[0]["timeouts"] > 0
        assert rows[0]["retries"] > 0

    def test_unknown_resilience_rejected(self, capsys):
        assert main(["serve-sim", "--resilience", "warp"]) == 2
        assert "unknown resilience policy" in capsys.readouterr().out

    def test_bad_resilience_option_rejected(self, capsys):
        assert main(["serve-sim",
                     "--resilience", "retry:budget=0"]) == 2
        assert main(["serve-sim",
                     "--resilience", "hedge:warp=1"]) == 2

    def test_resilience_without_budget_source_rejected(self, capsys):
        # no timeout/delay option and no --slo to inherit one from:
        # a clean exit-2 error, not a traceback from inside the run
        assert main(["serve-sim", "bursty",
                     "--resilience", "retry", *self.FAST]) == 2
        assert "SLO target" in capsys.readouterr().out

    def test_resilience_inherits_slo_budget(self, capsys):
        assert main(["--json", "serve-sim", "overload",
                     "--policy", "timeout", "--slo", "1500",
                     "--resilience", "hedge",
                     "--requests", "200"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["resilience"] == "hedge"

    def test_scale_flag_runs_predictive_autoscaling(self, capsys):
        assert main(["--json", "serve-sim", "diurnal",
                     "--policy", "timeout", "--scale", "holt",
                     "--slo", "2000", "--requests", "300",
                     "--replicas", "1"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["replicas_peak"] > rows[0]["replicas_low"] == 1
        assert 0.0 <= rows[0]["slo_attain"] <= 1.0

    def test_bad_scale_value_exits_cleanly(self, capsys):
        """A bad --scale must exit 2 with a ConfigError message, not
        a traceback."""
        assert main(["serve-sim", "--scale", "warp"]) == 2
        out = capsys.readouterr().out
        assert "unknown scale policy" in out
        assert "Traceback" not in out
        assert main(["serve-sim", "--scale"]) == 2
        # reactive needs bounds to react within
        assert main(["serve-sim", "--scale", "reactive"]) == 2
        assert "autoscale" in capsys.readouterr().out

    def test_bad_flush_value_exits_cleanly(self, capsys):
        assert main(["serve-sim", "--flush", "lifo"]) == 2
        out = capsys.readouterr().out
        assert "unknown flush policy" in out
        assert "Traceback" not in out
        assert main(["serve-sim", "--flush"]) == 2

    def test_priority_flag_needs_edf_and_known_models(self, capsys):
        assert main(["serve-sim", "--priority", "ResNet50=2"]) == 2
        assert "edf" in capsys.readouterr().out
        assert main(["serve-sim", "--flush", "edf",
                     "--priority", "NotANet=2"]) == 2
        assert "unknown model" in capsys.readouterr().out
        assert main(["serve-sim", "--flush", "edf",
                     "--priority", "ResNet50"]) == 2

    def test_priority_flag_reorders_with_edf(self, capsys):
        assert main(["--json", "serve-sim", "hot-model",
                     "--policy", "timeout", "--flush", "edf",
                     "--priority", "ResNet50=2",
                     "--requests", "150", "--replicas", "1"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["scenario"] == "hot-model"

    def test_steal_flag_accepted(self, capsys):
        assert main(["--json", "serve-sim", "steady",
                     "--policy", "timeout", "--steal",
                     "--requests", "150", "--replicas", "2"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["scenario"] == "steady"

    def test_persist_memo_round_trip(self, capsys, tmp_path,
                                     monkeypatch):
        from repro.runtime.cache import CACHE_DIR_ENV
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        args = ["serve-sim", "steady", "--policy", "timeout",
                "--persist-memo", *self.FAST]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "persisted memo: 0 totals loaded" in cold
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "0 totals loaded" not in warm
        assert "warm start" in warm
        assert "0 layer simulations" in warm


class TestServeSimShardsCli:
    """The ``--shards N`` scale-out path and its exit-2 guard rails."""

    FAST = ["--requests", "200", "--replicas", "2", "--shards", "2",
            "--policy", "timeout"]

    def test_sharded_run_reports_aggregate_rows(self, capsys):
        assert main(["--json", "serve-sim", "steady", *self.FAST]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [(r["scenario"], r["policy"]) for r in rows] == [
            ("steady", "timeout")
        ]
        assert rows[0]["shards"] == 2
        assert rows[0]["requests"] == 200
        assert rows[0]["agg_rps"] > 0
        assert 0 < rows[0]["p50_us"] <= rows[0]["p95_us"]

    def test_bare_shards_flag_implies_shard_dispatch(self, capsys):
        assert main(["serve-sim", "steady", *self.FAST]) == 0
        out = capsys.readouterr().out
        assert "(shard)" in out
        assert "scale-out:" in out
        assert "2 shard worker(s)" in out

    def test_default_grid_skips_fault_scenarios(self, capsys):
        assert main(["--json", "serve-sim", *self.FAST]) == 0
        rows = json.loads(capsys.readouterr().out)
        scenarios = {r["scenario"] for r in rows}
        assert "failure-storm" not in scenarios
        assert "steady" in scenarios

    def test_bad_shard_count_rejected(self, capsys):
        assert main(["serve-sim", "--shards", "0"]) == 2
        assert main(["serve-sim", "--shards", "lots"]) == 2
        assert main(["serve-sim", "--shards"]) == 2

    def test_more_shards_than_replicas_rejected(self, capsys):
        assert main(["serve-sim", "steady", "--shards", "3",
                     "--replicas", "2"]) == 2
        out = capsys.readouterr().out
        assert "home replica" in out
        assert "Traceback" not in out

    def test_unstable_dispatch_rejected(self, capsys):
        assert main(["serve-sim", "steady", "--dispatch",
                     "round_robin", *self.FAST]) == 2
        assert "shard-stable dispatch" in capsys.readouterr().out

    def test_unstable_control_plane_rejected(self, capsys):
        assert main(["serve-sim", "steady", "--steal",
                     *self.FAST]) == 2
        assert "stealing" in capsys.readouterr().out
        assert main(["serve-sim", "diurnal", "--autoscale", "1:4",
                     *self.FAST]) == 2
        assert "autoscale" in capsys.readouterr().out
        assert main(["serve-sim", "overload", "--slo", "1500",
                     "--shed", "32", *self.FAST]) == 2
        assert "shed" in capsys.readouterr().out
        assert main(["serve-sim", "steady", "--fail", "1",
                     *self.FAST]) == 2
        assert "fault-free" in capsys.readouterr().out

    def test_fault_scenario_rejected(self, capsys):
        assert main(["serve-sim", "failure-storm", *self.FAST]) == 2
        assert "not shard-stable" in capsys.readouterr().out

    def test_priority_flush_rejected(self, capsys):
        assert main(["serve-sim", "steady", "--flush", "edf",
                     "--priority", "ResNet50=2", "--slo", "2000",
                     *self.FAST]) == 2
        assert "fifo" in capsys.readouterr().out

    def test_persist_memo_rides_along(self, capsys, tmp_path,
                                      monkeypatch):
        from repro.runtime.cache import CACHE_DIR_ENV
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        args = ["serve-sim", "steady", "--persist-memo", *self.FAST]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "persisted memo: 0 totals loaded" in cold
        assert "warm fleet:" in cold
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "0 totals loaded" not in warm

    def test_sharded_trace_rows_are_shard_tagged(self, capsys,
                                                 tmp_path):
        from repro.serving import load_trace
        trace = tmp_path / "shards.jsonl"
        assert main(["serve-sim", "steady", "--trace", str(trace),
                     *self.FAST]) == 0
        assert "shard-tagged" in capsys.readouterr().out
        meta, rows = load_trace(trace)
        assert {r["shard"] for r in rows} == {0, 1}
        assert meta["counters"]["arrivals"] == 200


class TestRunsAndCacheCli:
    def test_runs_lists_the_ledger(self, capsys):
        assert main(["tab2"]) == 0
        capsys.readouterr()
        assert main(["runs"]) == 0
        out = capsys.readouterr().out
        assert "tab2" in out

    def test_runs_json_and_limit(self, capsys):
        main(["tab2"])
        main(["tab1"])
        capsys.readouterr()
        assert main(["--json", "--limit", "1", "runs"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 1
        assert payload[0]["experiment"] == "tab1"  # newest first

    def test_cache_stats_and_clear(self, capsys):
        main(["tab2"])
        capsys.readouterr()
        assert main(["cache"]) == 0
        assert "tab2" in capsys.readouterr().out
        assert main(["cache", "clear"]) == 0
        assert "removed 1 cache entry" in capsys.readouterr().out
        assert main(["cache"]) == 0
        assert "0 entries" in capsys.readouterr().out

    def test_cache_unknown_subcommand(self, capsys):
        assert main(["cache", "explode"]) == 2

    def test_runs_rejects_positional_arguments(self, capsys):
        # `runs 5` is a natural typo for `runs --limit 5`
        assert main(["runs", "5"]) == 2
        assert "--limit" in capsys.readouterr().out


class TestArrayDemoData:
    """The VTM/MRAM/SNM array demos validate Table 1 (Sec 5: <=14%)."""

    @pytest.mark.parametrize("name", ["VTM", "MRAM", "SNM"])
    def test_model_matches_published_demo(self, name):
        read, write = ARRAY_DEMO_DATA[name]
        tech = TABLE1[name]
        assert tech.read_latency == pytest.approx(read, rel=0.14)
        assert tech.write_latency == pytest.approx(write, rel=0.14)
