"""Tests for the network compiler driver and the CLI entry point."""

import pytest

from repro.__main__ import EXPERIMENTS, main
from repro.compiler.driver import NetworkCompiler
from repro.cryomem import TABLE1
from repro.cryomem.validation import ARRAY_DEMO_DATA
from repro.models import get_model


class TestNetworkCompiler:
    def test_compiles_alexnet_with_ilp(self):
        compiler = NetworkCompiler()
        compilations = compiler.compile_network(get_model("AlexNet"))
        assert len(compilations) == 8  # 5 convs + 3 fcs
        assert all(c.solver == "ilp" for c in compilations)

    def test_effective_prefetch_matches_configuration(self):
        """The realised schedules express the configured lookahead."""
        compiler = NetworkCompiler(prefetch_depth=3)
        compilations = compiler.compile_network(get_model("AlexNet"))
        assert compiler.effective_prefetch_depth(compilations) == 3

    def test_no_prefetch_configuration(self):
        compiler = NetworkCompiler(prefetch_depth=1)
        compilations = compiler.compile_network(get_model("AlexNet"))
        assert compiler.effective_prefetch_depth(compilations) == 1

    def test_variable_budget_forces_greedy(self):
        compiler = NetworkCompiler(max_variables=10)
        result = compiler.compile_layer(
            get_model("AlexNet").compute_layers()[0]
        )
        assert result.solver == "greedy"

    def test_schedules_valid(self):
        compiler = NetworkCompiler()
        caps = {k: compiler.shift_capacity
                for k in ("alpha", "beta", "gamma", "delta")}
        for compilation in compiler.compile_network(get_model("AlexNet")):
            compilation.schedule.validate(caps, compiler.random_capacity)


class TestCli:
    def test_registry_covers_all_figures(self):
        expected = {f"fig{n}" for n in
                    (2, 5, 6, 7, 9, 12, 13, 14, 16, 17, 18, 19, 20, 21,
                     22, 23, 24, 25)}
        expected |= {"tab1", "tab2", "tab4"}
        assert expected == set(EXPERIMENTS)

    def test_list_mode(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig18" in out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2

    def test_runs_a_cheap_experiment(self, capsys):
        assert main(["tab2"]) == 0
        out = capsys.readouterr().out
        assert "ntron" in out


class TestArrayDemoData:
    """The VTM/MRAM/SNM array demos validate Table 1 (Sec 5: <=14%)."""

    @pytest.mark.parametrize("name", ["VTM", "MRAM", "SNM"])
    def test_model_matches_published_demo(self, name):
        read, write = ARRAY_DEMO_DATA[name]
        tech = TABLE1[name]
        assert tech.read_latency == pytest.approx(read, rel=0.14)
        assert tech.write_latency == pytest.approx(write, rel=0.14)
