"""Warm-fleet scale-out: memo prewarm, broadcast, and exactness.

The warm contract extends the sharded/geo one: shipping a prewarmed
:class:`MemoSnapshot` to shard and region workers changes *nothing*
about the answer — per-request latencies AND energies stay
bit-identical to a cold run — it only moves the layer simulations
from every worker to the parent, once.  These tests pin the snapshot
round-trip, the fast-forward arrival span, the zero-miss guarantee in
warm workers, and the chaos cell (a killed warm worker still merges
bit-exactly after retry).
"""

import multiprocessing
import os
import pickle

import pytest

from repro.__main__ import main
from repro.errors import ConfigError
from repro.runtime import executor as executor_module
from repro.serving import sharding as sharding_module
from repro.serving import (
    ARRIVAL_SHAPES,
    GeoRouter,
    LayerMemoCache,
    MemoSnapshot,
    RegionSpec,
    ServingSimulator,
    ShardedEngine,
    burn_draws,
    generate_trace,
    get_scenario,
    make_policy,
    prewarm_cache,
    trace_span,
)

SEED = 11


def _simulator(**kwargs):
    return ServingSimulator("SMART", replicas=2,
                            policy=make_policy("timeout", batch_size=8),
                            dispatch="shard", **kwargs)


def _sharded(scenario, n, *, shards=2, mode="inline", **kwargs):
    engine = ShardedEngine(shards, replicas=2, policy="timeout",
                           batch_size=8, detail=True, mode=mode,
                           **kwargs)
    return engine.run_scenario(scenario, n, seed=SEED)


class TestMemoSnapshot:
    def test_roundtrip_restores_every_cell(self):
        sim = _simulator()
        snapshot = sim.prewarm("steady")
        assert len(snapshot) > 0
        fresh = LayerMemoCache()
        snapshot.install(fresh)
        assert fresh.stats.seeded == len(snapshot)
        assert MemoSnapshot.from_cache(fresh).rows == snapshot.rows

    def test_snapshot_is_picklable(self):
        snapshot = _simulator().prewarm("steady")
        clone = pickle.loads(pickle.dumps(snapshot))
        assert clone == snapshot

    def test_prewarm_covers_the_run(self):
        # a prewarmed simulator serves the whole run from the memo:
        # zero layer simulations at serve time
        sim = _simulator()
        sim.prewarm("steady")
        result = sim.run_scenario("steady", 300, seed=SEED)
        assert result.cache.misses == 0
        assert result.cache.hits > 0

    def test_prewarm_rejects_bad_batch_ceiling(self):
        sim = _simulator()
        network = sim.network("ResNet50")
        with pytest.raises(ConfigError):
            prewarm_cache(LayerMemoCache(), sim.pool[0], [network], 0)


class TestFastForward:
    @pytest.mark.parametrize("shape", sorted(ARRIVAL_SHAPES))
    def test_burn_matches_a_real_pass(self, shape):
        import random
        process = ARRIVAL_SHAPES[shape](20_000.0)
        full, burned = random.Random(7), random.Random(7)
        for _ in process.times(250, full):
            pass
        burn_draws(process, 250, burned)
        assert full.getstate() == burned.getstate()

    @pytest.mark.parametrize("name", ["steady", "bursty", "diurnal"])
    def test_trace_span_matches_the_real_trace(self, name):
        scenario = get_scenario(name)
        trace = generate_trace(scenario, 20_000.0, 300, seed=SEED)
        first, last = trace_span(scenario, 20_000.0, 300, seed=SEED)
        assert first == trace[0].arrival
        assert last == trace[-1].arrival


class TestWarmSharded:
    @pytest.mark.parametrize("name", ["steady", "hot-model", "bursty"])
    def test_warm_is_bit_identical_to_cold(self, name):
        cold = _sharded(name, 400, prewarm=False)
        warm = _sharded(name, 400)
        assert warm.detail.latencies == cold.detail.latencies
        assert warm.detail.energy_per_request == \
            cold.detail.energy_per_request
        assert warm.requests == cold.requests
        assert warm.energy == cold.energy

    def test_warm_workers_never_miss(self):
        warm = _sharded("steady", 400, mode="process")
        assert warm.cache.seeded > 0
        assert warm.cache.seed_hits > 0
        assert warm.cache.misses == 0
        cold = _sharded("steady", 400, mode="process", prewarm=False)
        assert cold.cache.seeded == 0
        assert cold.cache.misses > 0
        assert warm.detail.latencies == cold.detail.latencies

    def test_external_snapshot_accepted(self):
        snapshot = _simulator().prewarm("steady")
        warm = _sharded("steady", 400, snapshot=snapshot)
        cold = _sharded("steady", 400, prewarm=False)
        assert warm.detail.latencies == cold.detail.latencies
        assert warm.detail.energy_per_request == \
            cold.detail.energy_per_request

    def test_shared_memo_cache_carries_across_engines(self):
        shared = LayerMemoCache()
        _sharded("steady", 300, memo_cache=shared)
        misses_after_first = shared.stats.misses
        _sharded("steady", 300, memo_cache=shared)
        # the second engine's calibration + prewarm ride the shared
        # cache: no new layer simulations in the parent
        assert shared.stats.misses == misses_after_first

    def test_row_reports_warm_counters(self):
        engine = ShardedEngine(2, replicas=2, policy="timeout",
                               batch_size=8, mode="inline")
        result = engine.run_scenario("steady", 300, seed=SEED)
        row = result.to_row()
        assert row["memo_seeded"] > 0
        assert row["warm_hits"] > 0


class TestWarmGeo:
    SOLO = (RegionSpec("solo", accelerator="SMART", replicas=2),)

    def test_solo_region_warm_matches_cold_and_monolithic(self):
        warm = GeoRouter(self.SOLO, policy="timeout", batch_size=8,
                         detail=True, mode="inline") \
            .run_scenario("steady", 400, seed=SEED)
        cold = GeoRouter(self.SOLO, policy="timeout", batch_size=8,
                         detail=True, mode="inline", prewarm=False) \
            .run_scenario("steady", 400, seed=SEED)
        mono = ServingSimulator(
            "SMART", replicas=2,
            policy=make_policy("timeout", batch_size=8),
            dispatch="round_robin",
        ).run_scenario("steady", 400, seed=SEED)
        assert warm.detail.latencies == cold.detail.latencies == \
            mono.latencies
        assert warm.detail.energy_per_request == \
            cold.detail.energy_per_request == mono.energy_per_request

    def test_stormy_multi_region_warm_matches_cold(self):
        def run(**kwargs):
            return GeoRouter(3, topology="ring", storms=2,
                             mode="process", **kwargs) \
                .run_scenario("diurnal", 300, seed=SEED)
        warm = run()
        cold = run(prewarm=False)
        assert warm.requests == cold.requests
        assert warm.energy == cold.energy
        assert warm.net_delay_s == cold.net_delay_s
        for q in (50, 95, 99):
            assert warm.latency_percentile(q) == \
                cold.latency_percentile(q)
        assert warm.cache.seeded > 0
        assert warm.cache.misses == 0
        assert cold.cache.misses > 0


class TestWarmChaos:
    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="worker-kill chaos needs fork inheritance")
    def test_killed_warm_worker_merges_bit_exactly(self, monkeypatch,
                                                   tmp_path):
        """A warm worker dying mid-run (``os._exit``) must not cost
        exactness: the retried shard re-installs the snapshot and the
        merged result still matches the cold monolithic answer."""
        real = sharding_module._serve_shard
        sentinel = tmp_path / "killed-once"

        def killer(spec):
            if spec["shard"] == 1 and not sentinel.exists():
                sentinel.write_text("x")
                os._exit(13)
            return real(spec)

        monkeypatch.setattr(sharding_module, "_serve_shard", killer)
        # drain pools forked before the monkeypatch so the killer is
        # actually inherited by the warm pool's workers
        executor_module.shutdown_pools()
        result = _sharded("steady", 400, mode="process",
                          retry_backoff_s=0.001)
        assert sentinel.exists()
        assert result.shard_retries >= 1
        assert result.cache.seeded > 0
        assert result.cache.misses == 0
        clean = _simulator().run_scenario("steady", 400, seed=SEED)
        assert result.detail.latencies == clean.latencies
        assert result.detail.energy_per_request == \
            clean.energy_per_request


class TestWarmCli:
    def test_sharded_persist_memo_accepted(self, capsys, tmp_path,
                                           monkeypatch):
        from repro.runtime.cache import CACHE_DIR_ENV
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        assert main(["serve-sim", "steady", "--shards", "2",
                     "--replicas", "2", "--requests", "200",
                     "--policy", "timeout", "--persist-memo"]) == 0
        out = capsys.readouterr().out
        assert "warm fleet:" in out
        assert "persisted memo: 0 totals loaded" in out

    def test_geo_persist_memo_accepted(self, capsys, tmp_path,
                                       monkeypatch):
        from repro.runtime.cache import CACHE_DIR_ENV
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        args = ["serve-sim", "steady", "--geo", "1", "--requests",
                "200", "--policy", "timeout", "--persist-memo"]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "warm fleet:" in cold
        assert "persisted memo: 0 totals loaded" in cold
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "0 totals loaded" not in warm
