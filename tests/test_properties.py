"""Property-based tests on core invariants (hypothesis)."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import GreedyCompiler, IlpCompiler, LayerDag
from repro.core import make_smart
from repro.eval.report import geomean
from repro.sfq.ptl import PtlLink, insert_repeaters
from repro.systolic.layers import ConvLayer
from repro.systolic.mapping import WeightStationaryMapping
from repro.systolic.memsys import RandomSpm, ShiftSpm
from repro.systolic.trace import layer_trace
from repro.units import KB, MB, NS


conv_layers = st.builds(
    ConvLayer,
    name=st.just("prop"),
    in_h=st.integers(min_value=7, max_value=64),
    in_w=st.integers(min_value=7, max_value=64),
    in_c=st.integers(min_value=1, max_value=256),
    out_c=st.integers(min_value=1, max_value=256),
    kernel_h=st.integers(min_value=1, max_value=5),
    kernel_w=st.integers(min_value=1, max_value=5),
    stride=st.integers(min_value=1, max_value=2),
    padding=st.integers(min_value=0, max_value=2),
)


class TestMappingProperties:
    @given(conv_layers)
    @settings(max_examples=60, deadline=None)
    def test_fold_coverage(self, layer):
        """Folds cover the full kernel volume and filter count."""
        mapping = WeightStationaryMapping(layer, 64, 256)
        assert mapping.row_folds * 64 >= layer.kernel_volume
        assert (mapping.col_folds * 256 * layer.groups
                >= layer.out_c)

    @given(conv_layers)
    @settings(max_examples=60, deadline=None)
    def test_utilization_bounds(self, layer):
        mapping = WeightStationaryMapping(layer, 64, 256)
        assert 0.0 < mapping.utilization(4) <= 1.0

    @given(conv_layers, st.integers(min_value=1, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_trace_counts_non_negative(self, layer, batch):
        trace = layer_trace(
            WeightStationaryMapping(layer, 64, 256), batch
        )
        for stats in trace.streams().values():
            assert stats.words >= 0
            assert stats.jumps >= 0
            assert stats.rand_fetches >= 0

    @given(conv_layers)
    @settings(max_examples=40, deadline=None)
    def test_weight_words_match_tiles(self, layer):
        mapping = WeightStationaryMapping(layer, 64, 256)
        trace = layer_trace(mapping)
        assert trace.weights.words == (
            mapping.folds * mapping.rows_used * mapping.cols_used
        )


class TestSpmProperties:
    @given(st.integers(min_value=-100_000, max_value=100_000))
    @settings(max_examples=60, deadline=None)
    def test_shift_rotation_cost_bounds(self, delta):
        spm = ShiftSpm(capacity_bytes=384 * KB, banks=1)
        cost = spm.jump_cost(abs(delta) + 1)
        assert 0 < cost <= spm.lane_words * spm.cell_time * 1.001

    @given(st.integers(min_value=1, max_value=10_000),
           st.integers(min_value=1, max_value=512))
    @settings(max_examples=60, deadline=None)
    def test_bulk_transfer_monotone_in_bytes(self, nbytes, line):
        spm = RandomSpm(28 * MB, 256, 1 * NS, 1 * NS, 0.1 * NS,
                        line_bytes=line, pipelined=True)
        assert (spm.bulk_transfer_time(nbytes)
                <= spm.bulk_transfer_time(nbytes + line))


class TestPtlProperties:
    @given(st.floats(min_value=1e-5, max_value=5e-3),
           st.floats(min_value=5e9, max_value=4e10))
    @settings(max_examples=40, deadline=None)
    def test_repeaters_meet_any_reachable_target(self, length, freq):
        links = insert_repeaters(length, freq)
        assert sum(l.length for l in links) == pytest.approx(length)
        for link in links:
            assert link.max_frequency >= freq * 0.999

    @given(st.floats(min_value=1e-6, max_value=1e-2))
    @settings(max_examples=40, deadline=None)
    def test_latency_superadditive_in_splits(self, length):
        """Splitting a line adds endpoint overhead, never saves time."""
        whole = PtlLink(length).latency
        halves = 2 * PtlLink(length / 2).latency
        assert halves >= whole - 1e-15


class TestSchedulerProperties:
    @given(st.integers(min_value=2, max_value=10),
           st.integers(min_value=1, max_value=4))
    @settings(max_examples=10, deadline=None)
    def test_ilp_dominates_greedy(self, iterations, depth):
        layer = ConvLayer("p", 13, 13, 128, 128, 3, 3, padding=1)
        mapping = WeightStationaryMapping(layer, 64, 256)
        dag = LayerDag.from_mapping(mapping, max_iterations=iterations)
        ilp = IlpCompiler(prefetch_depth=depth).compile(dag)
        greedy = GreedyCompiler(prefetch_depth=depth).compile(dag)
        # 3% slack: the greedy may overdraw capacity on forced use-edge
        # placements that the strictly-feasible ILP cannot (documented
        # in repro.compiler.greedy)
        assert (ilp.schedule.objective_value
                >= 0.97 * greedy.objective_value)

    @given(st.integers(min_value=2, max_value=8))
    @settings(max_examples=10, deadline=None)
    def test_schedules_respect_lifespans(self, iterations):
        layer = ConvLayer("p", 13, 13, 64, 64, 3, 3, padding=1)
        mapping = WeightStationaryMapping(layer, 64, 256)
        dag = LayerDag.from_mapping(mapping, max_iterations=iterations)
        schedule = GreedyCompiler().compile(dag)
        for placement in schedule.placements:
            assert (placement.obj.first_edge <= placement.edge
                    <= placement.obj.last_edge)


class TestSimulatorProperties:
    @given(st.integers(min_value=1, max_value=12))
    @settings(max_examples=8, deadline=None)
    def test_latency_scales_subadditively_with_batch(self, batch):
        """Per-image latency never increases with a bigger batch."""
        acc = make_smart()
        layer = ConvLayer("p", 14, 14, 256, 256, 3, 3, padding=1)
        single = acc.simulate_layer(layer, 1).total_time
        per_image = acc.simulate_layer(layer, batch).total_time / batch
        assert per_image <= single * 1.01


class TestReportProperties:
    @given(st.lists(st.floats(min_value=0.01, max_value=100.0),
                    min_size=1, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_geomean_between_min_and_max(self, values):
        g = geomean(values)
        assert min(values) * 0.999 <= g <= max(values) * 1.001
