"""End-to-end tests for the Runtime orchestration engine."""

import pytest

from repro.core import explore_design_space
from repro.errors import ConfigError
from repro.runtime import (
    Job,
    ResultCache,
    RunStore,
    Runtime,
    Sweep,
    register_experiment,
    unregister_experiment,
)
from repro.units import GHZ

CALLS = {"count": 0}


def _counting(n: int = 2, fail: bool = False) -> list[dict]:
    CALLS["count"] += 1
    if fail:
        raise ValueError("boom")
    return [{"i": i} for i in range(n)]


@pytest.fixture
def counting_experiment():
    CALLS["count"] = 0
    register_experiment("_counting_test", _counting,
                        "counting test experiment", figure=False)
    yield "_counting_test"
    unregister_experiment("_counting_test")


@pytest.fixture
def runtime(tmp_path):
    return Runtime(cache=ResultCache(tmp_path / "cache"),
                   store=RunStore(tmp_path / "runs.jsonl"),
                   mode="inline")


class TestCaching:
    def test_same_spec_hits_cache(self, runtime, counting_experiment):
        first = runtime.run_experiment(counting_experiment, n=3)
        second = runtime.run_experiment(counting_experiment, n=3)
        assert CALLS["count"] == 1
        assert not first.cached and second.cached
        assert second.rows == first.rows
        assert runtime.last_summary.cache_hits == 1

    def test_changed_parameter_misses(self, runtime,
                                      counting_experiment):
        runtime.run_experiment(counting_experiment, n=3)
        result = runtime.run_experiment(counting_experiment, n=4)
        assert CALLS["count"] == 2
        assert not result.cached
        assert len(result.rows) == 4

    def test_errors_are_not_cached(self, runtime, counting_experiment):
        first = runtime.run_experiment(counting_experiment, fail=True)
        second = runtime.run_experiment(counting_experiment, fail=True)
        assert "ValueError" in first.error
        assert not second.cached
        assert CALLS["count"] == 2

    def test_cache_disabled(self, tmp_path, counting_experiment):
        runtime = Runtime(store=RunStore(tmp_path / "r.jsonl"),
                          mode="inline", use_cache=False)
        runtime.run_experiment(counting_experiment)
        runtime.run_experiment(counting_experiment)
        assert CALLS["count"] == 2


class TestValidation:
    def test_unknown_experiment_rejected(self, runtime):
        with pytest.raises(ConfigError):
            runtime.run_experiment("no_such_experiment")

    def test_unknown_parameter_rejected(self, runtime,
                                        counting_experiment):
        with pytest.raises(ConfigError):
            runtime.run_experiment(counting_experiment, bogus=1)


class TestSweeps:
    def test_sweep_matches_serial_design_space(self, runtime):
        frequencies = (0.5, 1.0, 2.0, 4.0)
        results = runtime.run_sweep(Sweep(
            "design_space", grid={"frequency": list(frequencies)}))
        swept = [row for r in results for row in r.rows]
        serial = explore_design_space(
            frequencies=tuple(f * GHZ for f in frequencies))
        assert len(swept) == len(serial)
        for row, point in zip(swept, serial):
            assert row["frequency_ghz"] == pytest.approx(
                point.frequency / GHZ)
            assert row["leakage_mw"] == pytest.approx(
                point.leakage_power * 1e3)
            assert row["subbank_mats"] == point.subbank_mats

    def test_parallel_explore_matches_serial(self):
        serial = explore_design_space()
        parallel = explore_design_space(parallel=True)
        assert parallel == serial

    def test_sweep_ordering_is_deterministic(self, runtime,
                                             counting_experiment):
        sweep = Sweep(counting_experiment, grid={"n": [1, 2, 3]})
        results = runtime.run_sweep(sweep)
        assert [r.job.params["n"] for r in results] == [1, 2, 3]


class TestLedger:
    def test_every_job_is_recorded(self, runtime, counting_experiment):
        runtime.run_jobs([Job(counting_experiment, {"n": 2}),
                          Job(counting_experiment, {"fail": True})])
        records = runtime.store.records()
        assert len(records) == 2
        ok = [r for r in records if r.error is None]
        bad = [r for r in records if r.error is not None]
        assert ok[0].row_count == 2
        assert ok[0].elapsed_s > 0.0
        assert "ValueError" in bad[0].error

    def test_cached_runs_are_recorded_as_cached(self, runtime,
                                                counting_experiment):
        runtime.run_experiment(counting_experiment)
        runtime.run_experiment(counting_experiment)
        records = runtime.store.records()
        assert [r.cached for r in records] == [False, True]
        # the cache hit must not re-log the original run's duration
        assert records[0].elapsed_s > 0.0
        assert records[1].elapsed_s == 0.0
