"""Tests for the SFQ device and interconnect models."""


import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.sfq import (
    CmosWire,
    JosephsonJunction,
    JtlLine,
    MicrostripPtl,
    PtlLink,
    SfqHTree,
    SplitterUnit,
    TABLE2_COMPONENTS,
    insert_repeaters,
)
from repro.sfq.cells import Dff, NTron, Splitter, SplitterTree
from repro.units import GHZ, MM, PS, UM


class TestJosephsonJunction:
    def test_plasma_frequency_positive(self):
        jj = JosephsonJunction(100e-6, 70e-15, 6.0)
        assert jj.plasma_frequency > 1e11

    def test_damping_near_critical(self):
        jj = JosephsonJunction(100e-6, 70e-15, 6.0)
        assert 0.1 < jj.stewart_mccumber < 3.0

    def test_switch_energy_order(self):
        jj = JosephsonJunction(100e-6, 70e-15, 6.0)
        assert jj.switch_energy == pytest.approx(2.07e-19, rel=0.01)

    def test_scaling_preserves_beta_c(self):
        jj = JosephsonJunction(100e-6, 70e-15, 6.0)
        scaled = jj.scaled(2.0)
        assert scaled.critical_current == pytest.approx(200e-6)
        assert scaled.stewart_mccumber == pytest.approx(
            jj.stewart_mccumber, rel=1e-9
        )

    def test_invalid_parameters_raise(self):
        with pytest.raises(ConfigError):
            JosephsonJunction(-1e-6, 70e-15, 6.0)
        with pytest.raises(ConfigError):
            JosephsonJunction(100e-6, 0, 6.0)

    @given(st.floats(min_value=0.1, max_value=10.0))
    def test_scaled_ratio_property(self, ratio):
        jj = JosephsonJunction(100e-6, 70e-15, 6.0)
        assert jj.scaled(ratio).critical_current == pytest.approx(
            100e-6 * ratio
        )


class TestMicrostripPtl:
    def test_low_impedance_design(self):
        line = MicrostripPtl()
        assert 3.0 < line.impedance < 8.0  # matched to JJ shunt R

    def test_velocity_near_c_over_3(self):
        line = MicrostripPtl()
        assert 0.5e8 < line.velocity < 1.5e8

    def test_delay_linear_in_length(self):
        line = MicrostripPtl()
        assert line.delay(2 * MM) == pytest.approx(2 * line.delay(1 * MM))

    def test_kinetic_inductance_contributes(self):
        thin = MicrostripPtl(penetration_depth_line=90e-9)
        negligible = MicrostripPtl(penetration_depth_line=1e-12)
        assert (thin.inductance_per_length
                > negligible.inductance_per_length)

    @given(st.floats(min_value=1e-6, max_value=5e-3))
    def test_delay_monotone(self, length):
        line = MicrostripPtl()
        assert line.delay(length) >= 0


class TestPtlLink:
    def test_latency_includes_endpoints(self):
        link = PtlLink(0.1 * MM)
        assert link.latency > link.line_delay
        assert link.endpoint_delay == pytest.approx(8.75 * PS)

    def test_resonance_frequency_drops_with_length(self):
        short = PtlLink(0.05 * MM)
        long = PtlLink(1.0 * MM)
        assert short.max_frequency > long.max_frequency

    def test_repeater_insertion_meets_target(self):
        links = insert_repeaters(2 * MM, 20 * GHZ)
        assert len(links) > 1
        for link in links:
            assert link.max_frequency >= 20 * GHZ

    def test_repeater_insertion_rejects_impossible(self):
        with pytest.raises(ConfigError):
            insert_repeaters(1 * MM, 1e12)  # beyond endpoint limit


class TestJtlAndCmos:
    def test_jtl_energy_exceeds_ptl_on_long_runs(self):
        length = 200 * UM
        assert (JtlLine(length).energy_per_pulse
                > 50 * PtlLink(length).dynamic_energy_per_pulse)

    def test_cmos_latency_exceeds_ptl(self):
        length = 200 * UM
        assert CmosWire(length).latency > 10 * PtlLink(length).latency

    def test_cmos_energy_orders_of_magnitude(self):
        length = 100 * UM
        ratio = (CmosWire(length).energy_per_bit
                 / PtlLink(length).dynamic_energy_per_pulse)
        assert ratio > 1e3

    def test_jtl_stage_count(self):
        assert JtlLine(100 * UM).stages == 10


class TestHTree:
    def test_table2_values(self):
        assert TABLE2_COMPONENTS["ntron"].latency == pytest.approx(
            103.02 * PS
        )
        assert TABLE2_COMPONENTS["splitter"].latency == pytest.approx(7 * PS)

    def test_splitter_unit_composition(self):
        unit = SplitterUnit()
        expected = (TABLE2_COMPONENTS["receiver"].latency
                    + TABLE2_COMPONENTS["splitter"].latency
                    + TABLE2_COMPONENTS["driver"].latency)
        assert unit.latency == pytest.approx(expected)

    def test_htree_levels(self):
        tree = SfqHTree(banks=256, array_side=10 * MM)
        assert tree.levels == 8
        assert tree.splitter_unit_count == 255

    def test_htree_meets_target_frequency(self):
        tree = SfqHTree(banks=64, array_side=8 * MM,
                        target_frequency=9.7e9)
        for links in tree.segment_links:
            for link in links:
                assert link.max_frequency >= 9.7e9

    def test_htree_broadcast_energy_exceeds_path(self):
        tree = SfqHTree(banks=256, array_side=10 * MM)
        assert (tree.energy_per_access(broadcast=True)
                > tree.energy_per_access(broadcast=False))

    def test_splitter_tree_fanout(self):
        tree = SplitterTree(fanout=16)
        assert tree.splitter_count == 15
        assert tree.depth == 4

    def test_cells_expose_uniform_interface(self):
        for cell in (Splitter(), NTron(), Dff()):
            assert cell.latency >= 0
            assert cell.leakage_power >= 0
            assert cell.area_f2 > 0
