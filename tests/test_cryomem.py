"""Tests for the cryogenic memory models."""

import pytest
from hypothesis import given, strategies as st

from repro.cryomem import (
    CmosSubbank,
    CryoMosfet,
    CryoRandomArray,
    JosephsonCmosSram,
    MRAM,
    SHIFT,
    SNM,
    ShiftArray,
    SUBBANK_CHIP_DATA,
    TABLE1,
    VTM,
    relative_error,
)
from repro.cryomem.cmos_htree import CmosHTree
from repro.cryomem.subbank import subbank_for_stage_time
from repro.errors import ConfigError
from repro.units import KB, MB, MM, NS


class TestCryoMosfet:
    def test_mobility_rises_when_cooled(self):
        assert CryoMosfet(temperature=4).mobility_factor > 2.0
        assert CryoMosfet(temperature=300).mobility_factor == 1.0

    def test_vth_rises_when_cooled(self):
        cold = CryoMosfet(temperature=4)
        warm = CryoMosfet(temperature=300)
        assert cold.vth > warm.vth

    def test_vth_saturates_below_50k(self):
        assert CryoMosfet(temperature=4).vth == pytest.approx(
            CryoMosfet(temperature=40).vth
        )

    def test_transistors_faster_at_4k(self):
        assert CryoMosfet(temperature=4).gate_delay_factor < 1.0

    def test_leakage_reduced_over_90_percent(self):
        factor = CryoMosfet(temperature=4).leakage_factor
        assert factor <= 0.1  # paper Sec 3: >90% reduction
        assert factor > 0.0

    def test_wire_resistance_improves(self):
        assert 0.1 < CryoMosfet(temperature=4).wire_resistance_factor < 0.5

    @given(st.floats(min_value=4.0, max_value=300.0))
    def test_monotone_leakage(self, temperature):
        colder = CryoMosfet(temperature=temperature)
        assert 0 < colder.leakage_factor <= 1.0


class TestTable1:
    def test_all_rows_present(self):
        assert set(TABLE1) == {"SHIFT", "VTM", "SRAM", "MRAM", "SNM"}

    def test_shift_values(self):
        assert SHIFT.read_latency == pytest.approx(0.02 * NS)
        assert SHIFT.cell_size_f2 == 39.0
        assert not SHIFT.random_access

    def test_snm_destructive_read(self):
        assert SNM.destructive_read
        assert SNM.effective_read_latency == pytest.approx(
            SNM.read_latency + SNM.write_latency
        )

    def test_mram_write_penalty(self):
        assert MRAM.write_latency == pytest.approx(2 * NS)
        assert MRAM.write_energy > MRAM.read_energy

    def test_cell_area_scaling(self):
        assert VTM.cell_area(1e-6) == pytest.approx(203e-12)


class TestSubbank:
    def test_latency_increases_with_capacity(self):
        mosfet = CryoMosfet()
        small = CmosSubbank(8 * KB, mats=8, mosfet=mosfet)
        large = CmosSubbank(2 * MB, mats=8, mosfet=mosfet)
        assert large.access_latency > small.access_latency

    def test_more_mats_cut_latency_but_add_leakage(self):
        mosfet = CryoMosfet()
        few = CmosSubbank(112 * KB, mats=4, mosfet=mosfet)
        many = CmosSubbank(112 * KB, mats=64, mosfet=mosfet)
        assert many.access_latency < few.access_latency
        assert many.leakage_power > few.leakage_power

    def test_stage_fit_search(self):
        subbank = subbank_for_stage_time(112 * KB, 0.11 * NS)
        assert subbank.access_latency <= 0.11 * NS

    def test_stage_fit_falls_back_to_fastest(self):
        """An unreachable stage time returns the fastest legal config
        (the array then pipelines at that sub-bank's latency)."""
        subbank = subbank_for_stage_time(64 * MB, 1e-12)
        assert subbank.access_latency > 1e-12
        assert subbank.mats >= 1

    def test_validation_band_against_chip(self):
        """Model is conservative vs the embedded chip data (Fig 12)."""
        mosfet = CryoMosfet(node=0.18e-6, temperature=4.0,
                            supply_voltage=1.8, vth_300k=0.5)
        for point in SUBBANK_CHIP_DATA:
            model = CmosSubbank(point.capacity_bytes, mats=point.mats,
                                mosfet=mosfet)
            lat_err = relative_error(model.access_latency, point.latency)
            energy_err = relative_error(model.access_energy, point.energy)
            assert 0.0 <= lat_err <= 0.20
            assert 0.0 <= energy_err <= 0.25


class TestShiftArray:
    def test_lane_geometry(self):
        array = ShiftArray(24 * MB, banks=64)
        assert array.lane_bytes == 384 * KB
        assert array.lane_cells == 384 * KB * 8

    def test_rotation_wraps_forward(self):
        array = ShiftArray(32 * KB, banks=256)
        assert array.rotate_steps(-1) == array.lane_words - 1

    def test_energy_scales_with_lane_size(self):
        big = ShiftArray(24 * MB, banks=64)
        small = ShiftArray(32 * KB, banks=256)
        assert big.energy_per_step > 100 * small.energy_per_step

    def test_no_leakage(self):
        assert ShiftArray(24 * MB, banks=64).leakage_power == 0.0

    @given(st.integers(min_value=-10_000, max_value=10_000))
    def test_rotation_bounded(self, delta):
        array = ShiftArray(32 * KB, banks=256)
        assert 0 <= array.rotate_steps(delta) < array.lane_words


class TestArrays:
    def test_jcs_sram_latency_band(self):
        """28 MB Josephson-CMOS SRAM lands in the 2-4(+) ns band."""
        array = JosephsonCmosSram(28 * MB, banks=256)
        assert 2 * NS <= array.access_latency <= 6 * NS

    def test_htree_dominates_latency(self):
        """Fig 9: the CMOS H-tree dominates the large-array access."""
        array = JosephsonCmosSram(28 * MB, banks=256)
        assert array.breakdown.latency_share("htree") > 0.7

    def test_cmos_htree_scales_with_side(self):
        small = CmosHTree(banks=64, array_side=2 * MM)
        large = CmosHTree(banks=64, array_side=8 * MM)
        assert large.path_latency > small.path_latency

    def test_random_array_rejects_shift(self):
        with pytest.raises(ConfigError):
            CryoRandomArray(SHIFT, 28 * MB)

    def test_snm_read_includes_restore(self):
        array = CryoRandomArray(SNM, 28 * MB)
        assert array.read_latency == pytest.approx(3.1 * NS)

    def test_decoder_area_share_significant(self):
        """SFQ decoders cost a significant share (paper: 16-28%)."""
        array = CryoRandomArray(VTM, 12 * MB)
        assert array.decoder_area_share > 0.05
