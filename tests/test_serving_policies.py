"""Tests for the pluggable scheduling control plane.

Covers the policy seams themselves (dispatch / flush / scale /
admission resolve and validate), seam equivalence (explicit policy
objects produce the same floats as the string-configured engine),
the EDF ordering and work-stealing conservation properties from the
issue, the predictive autoscaler (including the committed
reactive-vs-predictive diurnal comparison), the weight-deployment
switch charge, and the persisted memo pool.
"""

import random

import pytest

from repro.core import make_smart, make_tpu
from repro.errors import ConfigError
from repro.serving import (
    AutoscalePolicy,
    ClusterEngine,
    DISPATCH_STRATEGIES,
    EdfFlush,
    FailurePlan,
    FifoFlush,
    FixedSizeBatching,
    ForecastScalePolicy,
    LayerMemoCache,
    Outage,
    ReactiveScalePolicy,
    RoundRobinDispatch,
    ServingSimulator,
    TimeoutBatching,
    WorkStealPolicy,
    generate_trace,
    get_scenario,
    load_persistent_memo,
    make_dispatch,
    make_flush,
    make_policy,
    make_scale,
    store_persistent_memo,
)
from repro.serving.experiments import parse_priorities, serving_forecast
from repro.serving.workload import Request
from repro.systolic.layers import ConvLayer, Network

TOY = Network("toy", (
    ConvLayer("c1", 16, 16, 8, 16, 3, 3, padding=1),
    ConvLayer("c2", 16, 16, 16, 16, 3, 3, padding=1),
    ConvLayer("fc", 1, 1, 4096, 10, 1, 1, kind="fc"),
))
TOY2 = Network("toy2", TOY.layers[:2])
TOY3 = Network("toy3", TOY.layers[1:])


def toy_simulator(**kwargs):
    kwargs.setdefault("policy", FixedSizeBatching(batch_size=4))
    kwargs.setdefault("networks", {"toy": TOY, "toy2": TOY2,
                                   "toy3": TOY3})
    return ServingSimulator(make_smart(), **kwargs)


def toy_trace(n, gap=1e-5, model="toy", start_id=0, offset=0.0):
    return [Request(start_id + i, model, offset + (i + 1) * gap)
            for i in range(n)]


def flat_engine(n_replicas=1, service=1e-6, switch=None, **kwargs):
    """An engine with constant-rate stub models (no simulator)."""
    return ClusterEngine(
        [make_smart()] * n_replicas, FixedSizeBatching(batch_size=2),
        "round_robin",
        service_fn=lambda acc, model, size: service,
        energy_fn=lambda acc, model, size: 1e-9,
        switch_fn=(None if switch is None
                   else (lambda acc, model, size: switch)),
        **kwargs,
    )


class TestPolicyResolution:
    def test_make_dispatch_names_round_trip(self):
        for name in DISPATCH_STRATEGIES:
            assert make_dispatch(name).name == name

    def test_make_dispatch_passes_instances_through(self):
        policy = RoundRobinDispatch()
        assert make_dispatch(policy) is policy

    def test_unknown_dispatch_rejected(self):
        with pytest.raises(ConfigError):
            make_dispatch("random")
        with pytest.raises(ConfigError):
            ServingSimulator(make_smart(), dispatch="random")

    def test_make_flush(self):
        assert isinstance(make_flush("fifo"), FifoFlush)
        edf = make_flush("edf", {"toy": 3})
        assert isinstance(edf, EdfFlush)
        assert edf.priority("toy") == 3
        assert edf.priority("unlisted") == 0
        with pytest.raises(ConfigError):
            make_flush("lifo")
        with pytest.raises(ConfigError):
            make_flush("fifo", {"toy": 1})  # priorities need edf

    def test_edf_priority_validation(self):
        with pytest.raises(ConfigError):
            EdfFlush({"toy": "high"})
        with pytest.raises(ConfigError):
            EdfFlush({"toy": 10**6})

    def test_make_scale(self):
        bounds = AutoscalePolicy(min_replicas=1, max_replicas=4)
        assert make_scale("", None) is None
        assert isinstance(make_scale("", bounds), ReactiveScalePolicy)
        assert isinstance(make_scale("reactive", bounds),
                          ReactiveScalePolicy)
        holt = make_scale("holt", bounds)
        assert isinstance(holt, ForecastScalePolicy)
        assert (holt.min_replicas, holt.max_replicas) == (1, 4)
        with pytest.raises(ConfigError):
            make_scale("reactive", None)  # needs bounds
        with pytest.raises(ConfigError):
            make_scale("warp", bounds)

    def test_forecast_policy_validation(self):
        with pytest.raises(ConfigError):
            ForecastScalePolicy(min_replicas=0)
        with pytest.raises(ConfigError):
            ForecastScalePolicy(mode="arima")
        with pytest.raises(ConfigError):
            ForecastScalePolicy(alpha=0.0)
        with pytest.raises(ConfigError):
            ForecastScalePolicy(target_utilization=1.5)
        with pytest.raises(ConfigError):
            ForecastScalePolicy(capacity_rps=-1.0)

    def test_parse_priorities(self):
        assert parse_priorities("") == {}
        assert parse_priorities("a=2,b=-1") == {"a": 2, "b": -1}
        assert parse_priorities({"a": 3}) == {"a": 3}
        with pytest.raises(ConfigError):
            parse_priorities("a")
        with pytest.raises(ConfigError):
            parse_priorities("a=fast")

    def test_depth_admission_subclass_keeps_its_admit(self):
        """Only the exact stock DepthAdmission takes the inlined
        depth-compare fast path; a subclass with its own admit() must
        be consulted per arrival."""
        from repro.serving import DepthAdmission

        calls = []

        class SpyAdmission(DepthAdmission):
            def admit(self, time, request, in_system):
                calls.append(request.request_id)
                return request.request_id % 2 == 0

        engine = flat_engine(admission=SpyAdmission(depth=1))
        run = engine.run(toy_trace(6))
        assert len(calls) == 6  # every arrival went through admit()
        assert sorted(run.shed) == [1, 3, 5]

    def test_steal_policy_validation(self):
        with pytest.raises(ConfigError):
            WorkStealPolicy(tick=0.0)
        with pytest.raises(ConfigError):
            WorkStealPolicy(max_steals=0)
        with pytest.raises(ConfigError):
            WorkStealPolicy(min_gain=-1e-9)


class TestSeamEquivalence:
    """Explicit policy objects must emit the same floats as the
    string-configured engine — the seam adds zero drift on top of the
    reference-oracle suite in test_serving_reference.py."""

    SHARED = LayerMemoCache()

    @pytest.mark.parametrize("dispatch", DISPATCH_STRATEGIES)
    @pytest.mark.parametrize("scenario", ["steady", "hot-model"])
    def test_dispatch_instance_matches_string(self, scenario, dispatch):
        spec = get_scenario(scenario)
        by_name = ServingSimulator("SMART", replicas=2,
                                   policy=make_policy("timeout"),
                                   dispatch=dispatch, cache=self.SHARED)
        rate = spec.load * by_name.capacity_rps(spec)
        trace = generate_trace(spec, rate, 120, seed=5)
        by_object = ServingSimulator(
            "SMART", replicas=2, policy=make_policy("timeout"),
            dispatch=make_dispatch(dispatch), cache=self.SHARED,
            flush=FifoFlush(),
        )
        a = by_name.run(trace)
        b = by_object.run(trace)
        assert a.latencies == b.latencies
        assert a.energy_per_request == b.energy_per_request
        assert a.batches == b.batches

    def test_dispatch_instance_state_resets_between_runs(self):
        """A shared RoundRobinDispatch must restart its cursor each
        run, or the second run would start on the other replica."""
        policy = RoundRobinDispatch()
        trace = toy_trace(16)
        first = toy_simulator(replicas=2, dispatch=policy).run(trace)
        second = toy_simulator(replicas=2, dispatch=policy).run(trace)
        assert [b.replica for b in first.batches] == [
            b.replica for b in second.batches]

    def test_reactive_wrap_matches_plain_autoscale(self):
        autoscale = AutoscalePolicy(min_replicas=1, max_replicas=4,
                                    high_queue=4, low_queue=1,
                                    tick=5e-7, warmup=2e-6,
                                    cooldown=1e-6)
        trace = toy_trace(150, gap=3e-8)
        plain = toy_simulator(replicas=1, dispatch="least_loaded",
                              policy=TimeoutBatching(max_batch=4,
                                                     max_wait=1e-6),
                              autoscale=autoscale).run(trace)
        wrapped = toy_simulator(
            replicas=1, dispatch="least_loaded",
            policy=TimeoutBatching(max_batch=4, max_wait=1e-6),
            autoscale=ReactiveScalePolicy(autoscale)).run(trace)
        assert plain.latencies == wrapped.latencies
        assert plain.scale_events == wrapped.scale_events


class TestEdfOrdering:
    def test_pick_waiting_property(self):
        """EDF never re-dispatches a later-deadline batch ahead of an
        earlier one of the same priority class, and never a lower
        class ahead of a higher one (randomised)."""
        rng = random.Random(17)
        edf = EdfFlush({"hot": 2, "cold": -1})
        for _ in range(200):
            waiting = [(rng.choice(["hot", "plain", "cold"]), (),
                        rng.uniform(0, 1e-3))
                       for _ in range(rng.randint(1, 12))]
            picked = waiting[edf.pick_waiting(waiting)]
            best_class = max(edf.priority(m) for m, _, _ in waiting)
            assert edf.priority(picked[0]) == best_class
            same_class = [f for m, _, f in waiting
                          if edf.priority(m) == best_class]
            assert picked[2] == min(same_class)

    def test_fifo_pick_waiting_is_fifo(self):
        waiting = [("b", (), 3.0), ("a", (), 1.0)]
        assert FifoFlush().pick_waiting(waiting) == 0

    def test_parked_batches_redispatch_in_edf_order(self):
        """A total outage parks every flush; recovery must drain the
        parked queue highest-priority first, earliest deadline first —
        observable as the dispatch (batch) order after recovery."""
        outage = Outage(replica=0, at=5e-6, until=1e-2)
        flush = EdfFlush({"toy3": 5})
        sim = toy_simulator(
            replicas=1, flush=flush,
            policy=TimeoutBatching(max_batch=4, max_wait=1e-6),
            failures=FailurePlan(outages=(outage,)))
        trace = sorted(
            toy_trace(8, gap=2e-6, model="toy", offset=4e-6)
            + toy_trace(8, gap=2e-6, model="toy2", start_id=50,
                        offset=4e-6)
            + toy_trace(8, gap=2e-6, model="toy3", start_id=100,
                        offset=4e-6),
            key=lambda r: r.arrival)
        result = sim.run(trace)
        parked = [b for b in result.batches if b.start >= outage.until]
        assert len(parked) >= 6  # the outage really parked the backlog
        # every high-priority parked batch dispatched before any other
        first_other = next(i for i, b in enumerate(parked)
                           if b.model != "toy3")
        assert all(b.model != "toy3" for b in parked[first_other:])
        # within each class, deadlines (flush instants) never regress
        for model in ("toy", "toy2", "toy3"):
            flushes = [b.flush for b in parked if b.model == model]
            assert flushes == sorted(flushes)

    def test_simultaneous_deadlines_fire_by_priority(self):
        """Two queues hitting the same flush deadline fire high class
        first under EDF; FIFO fires them in model-name order."""
        policy = TimeoutBatching(max_batch=8, max_wait=1e-4)
        trace = [Request(0, "toy", 1e-5), Request(1, "toy2", 1e-5),
                 Request(2, "toy", 5.0)]
        fifo = toy_simulator(replicas=1, policy=policy).run(trace)
        assert [b.model for b in fifo.batches[:2]] == ["toy", "toy2"]
        edf = toy_simulator(replicas=1, policy=policy,
                            flush=EdfFlush({"toy2": 1})).run(trace)
        assert [b.model for b in edf.batches[:2]] == ["toy2", "toy"]

    def test_drain_sweep_respects_priority(self):
        """Deadline-less leftovers drain high-priority queues first."""
        trace = sorted(toy_trace(2) + toy_trace(2, start_id=10,
                                                model="toy2"),
                       key=lambda r: r.arrival)
        fifo = toy_simulator(replicas=1).run(trace)
        assert [b.model for b in fifo.batches] == ["toy", "toy2"]
        edf = toy_simulator(replicas=1,
                            flush=EdfFlush({"toy2": 1})).run(trace)
        assert [b.model for b in edf.batches] == ["toy2", "toy"]


class TestWorkStealing:
    def imbalanced(self, **kwargs):
        """Round-robin over a fast/slow pool builds a backlog on the
        slow replica while the fast one idles — prime steal bait."""
        kwargs.setdefault("policy", TimeoutBatching(max_batch=4,
                                                    max_wait=1e-6))
        return ServingSimulator(
            accelerators=[make_smart(), make_tpu()],
            dispatch="round_robin",
            networks={"toy": TOY, "toy2": TOY2, "toy3": TOY3},
            **kwargs)

    def test_steals_happen_and_conserve_requests(self):
        """The conservation property: stealing never loses nor
        duplicates a request, whatever it rebalances."""
        sim = self.imbalanced(steal=WorkStealPolicy(tick=2e-7,
                                                    max_steals=4))
        n = 160
        trace = toy_trace(n, gap=5e-8)
        result = sim.run(trace)
        assert result.stolen > 0
        assert result.to_row()["stolen"] == result.stolen
        # conservation: one finite completion per request, and the
        # served batches partition the trace (no loss, no duplicates)
        assert len(result.latencies) == n
        assert all(l != float("inf") for l in result.latencies)
        assert sum(b.size for b in result.batches) == n

    def test_stealing_is_deterministic(self):
        sim_a = self.imbalanced(steal=WorkStealPolicy(tick=2e-7))
        sim_b = self.imbalanced(steal=WorkStealPolicy(tick=2e-7))
        trace = toy_trace(120, gap=5e-8)
        a, b = sim_a.run(trace), sim_b.run(trace)
        assert a.latencies == b.latencies
        assert a.stolen == b.stolen

    def test_stealing_cuts_tail_latency_on_imbalance(self):
        trace = toy_trace(160, gap=5e-8)
        plain = self.imbalanced().run(trace)
        stolen = self.imbalanced(
            steal=WorkStealPolicy(tick=2e-7, max_steals=4)).run(trace)
        assert stolen.stolen > 0
        assert stolen.latency_percentile(95) < \
            plain.latency_percentile(95)

    def test_never_steals_started_batches(self):
        """A stolen batch must not have started on its victim: every
        surviving batch's start respects its replica's prior done
        times (the schedule stays physically consistent)."""
        sim = self.imbalanced(steal=WorkStealPolicy(tick=2e-7,
                                                    max_steals=4))
        result = sim.run(toy_trace(160, gap=5e-8))
        by_replica = {}
        for batch in result.batches:
            by_replica.setdefault(batch.replica, []).append(batch)
        for batches in by_replica.values():
            batches.sort(key=lambda b: b.start)
            for earlier, later in zip(batches, batches[1:]):
                assert later.start >= earlier.done - 1e-18

    def test_works_with_autoscaler_sharing_ticks(self):
        autoscale = AutoscalePolicy(min_replicas=1, max_replicas=3,
                                    high_queue=4, low_queue=1,
                                    tick=5e-7, warmup=2e-6,
                                    cooldown=1e-6)
        sim = toy_simulator(replicas=1, dispatch="least_loaded",
                            policy=TimeoutBatching(max_batch=4,
                                                   max_wait=1e-6),
                            autoscale=autoscale,
                            steal=WorkStealPolicy())
        result = sim.run(toy_trace(150, gap=3e-8))
        assert result.peak_replicas > 1  # scaling still works
        assert all(l != float("inf") for l in result.latencies)


class TestForecastScaling:
    def test_holt_projects_a_rising_trend_ahead(self):
        policy = ForecastScalePolicy(mode="holt", alpha=0.5, beta=0.5,
                                     horizon=5, capacity_rps=1000.0)
        policy.reset()
        for arrivals in range(10, 110, 10):  # steadily rising rate
            policy.decide(0.0, 0, 1, None, arrivals, 1.0)
        assert policy.forecast > 100.0  # leads the latest observation

    def test_ewma_smoothes_without_trend(self):
        policy = ForecastScalePolicy(mode="ewma", alpha=0.5,
                                     capacity_rps=1000.0)
        policy.reset()
        for arrivals in (100, 100, 100):
            policy.decide(0.0, 0, 1, None, arrivals, 1.0)
        assert policy.forecast == pytest.approx(100.0)

    def test_decide_tracks_desired_pool(self):
        policy = ForecastScalePolicy(min_replicas=1, max_replicas=8,
                                     mode="ewma", alpha=1.0,
                                     target_utilization=0.5,
                                     capacity_rps=100.0)
        policy.reset()
        # 300 req/s at 50% utilisation of 100 rps replicas -> 6 wanted
        assert policy.decide(0.0, 0, 1, None, 300, 1.0) == 1
        assert policy.decide(0.0, 0, 6, None, 300, 1.0) == 0
        assert policy.decide(0.0, 0, 8, None, 300, 1.0) == -1

    def test_uncalibrated_forecast_fails_fast(self):
        engine = flat_engine(autoscale=ForecastScalePolicy())
        with pytest.raises(ConfigError):
            engine.run(toy_trace(4))

    def test_simulator_calibrates_from_the_trace_mix(self):
        policy = ForecastScalePolicy(min_replicas=1, max_replicas=4)
        sim = toy_simulator(replicas=1, autoscale=policy,
                            policy=TimeoutBatching(max_batch=4,
                                                   max_wait=1e-6))
        sim.run(toy_trace(60, gap=1e-7))
        assert policy.capacity_rps is not None
        assert policy.capacity_rps > 0
        assert not policy.capacity_pinned

    def test_forecast_scales_ahead_on_toy_wave(self):
        policy = ForecastScalePolicy(min_replicas=1, max_replicas=4,
                                     mode="holt", tick=5e-7,
                                     warmup=2e-6,
                                     target_utilization=0.6)
        sim = toy_simulator(replicas=1, dispatch="least_loaded",
                            policy=TimeoutBatching(max_batch=4,
                                                   max_wait=1e-6),
                            autoscale=policy)
        result = sim.run(toy_trace(200, gap=2e-8))
        assert result.peak_replicas > 1
        assert any(a == "up" for _, a in result.scale_events)

    def test_forecast_beats_reactive_p95_on_diurnal(self):
        """The committed acceptance row: predictive autoscaling must
        attain strictly more of the SLO than reactive p95 scaling on
        the diurnal scenario (same trace, same SLO, same bounds) —
        and no worse attainment-per-joule."""
        rows = {r["scale"]: r for r in serving_forecast(requests=1500)}
        reactive = rows["reactive-p95"]
        for mode in ("ewma", "holt"):
            assert rows[mode]["slo_attain"] > reactive["slo_attain"]
            assert rows[mode]["attain_per_j"] >= reactive["attain_per_j"]
        # the predictive pool really moved (it scaled, not overprovisioned)
        assert rows["holt"]["replicas_peak"] > rows["holt"]["replicas_low"]

    def test_serving_forecast_registered(self):
        from repro.runtime import registry
        assert "serving_forecast" in registry.names()


class TestSwitchCharge:
    def test_model_switch_charges_deploy_once(self):
        """Alternating models on one replica pay the switch charge on
        every model change; repeats of one model never do."""
        switch = 7e-6
        engine = flat_engine(service=1e-6, switch=switch)
        trace = []
        for i in range(4):  # toy,toy / toy2,toy2 / toy,toy / toy2,toy2
            model = "toy" if i % 2 == 0 else "toy2"
            trace.append(Request(2 * i, model, (i + 1) * 1e-9))
            trace.append(Request(2 * i + 1, model, (i + 1) * 1e-9))
        run = engine.run(trace)
        services = [b.done - b.start for b in run.batches]
        # first batch: cold array, no charge; then every batch switches
        assert services[0] == pytest.approx(1e-6)
        assert services[1:] == pytest.approx([1e-6 + switch] * 3)

    def test_same_model_back_to_back_is_uncharged(self):
        engine = flat_engine(service=1e-6, switch=7e-6)
        run = engine.run(toy_trace(8, gap=1e-9))
        assert [b.done - b.start for b in run.batches] == \
            pytest.approx([1e-6] * 4)

    def test_no_switch_fn_means_no_charge(self):
        engine = flat_engine(service=1e-6, switch=None)
        trace = [Request(0, "toy", 1e-9), Request(1, "toy", 2e-9),
                 Request(2, "toy2", 3e-9), Request(3, "toy2", 4e-9)]
        run = engine.run(trace)
        assert [b.done - b.start for b in run.batches] == \
            pytest.approx([1e-6, 1e-6])

    def test_shared_replica_contention_shows_in_simulator(self):
        """Two models forced onto one replica cost more than the same
        workloads on separate replicas beyond the queueing effect —
        the weight-deployment contention the ROADMAP called out."""
        policy = FixedSizeBatching(batch_size=4)
        interleaved = sorted(
            toy_trace(8, gap=1e-3)
            + toy_trace(8, gap=1e-3, model="toy2", start_id=100,
                        offset=5e-4),
            key=lambda r: r.arrival)
        shared = toy_simulator(replicas=1, policy=policy)
        result = shared.run(interleaved)
        switched = [b for b in result.batches]
        # each batch alternates models, so every one after the first
        # includes its network's deploy total on top of batch latency
        cache = shared.cache
        for prev, batch in zip(switched, switched[1:]):
            assert prev.model != batch.model
            net = {"toy": TOY, "toy2": TOY2}[batch.model]
            expected = (cache.latency_total(make_smart(), net, 4)
                        + cache.deploy_total(make_smart(), net, 4))
            assert batch.done - batch.start == pytest.approx(expected)

    def test_recovered_replica_restarts_cold(self):
        """After an outage the array is power-cycled: the first batch
        back pays no switch charge even if the model differs."""
        switch = 7e-6
        outage_end = 1e-3
        engine = flat_engine(
            service=1e-6, switch=switch,
            failures=FailurePlan(outages=(
                Outage(replica=0, at=5e-9, until=outage_end),)))
        trace = [Request(0, "toy", 1e-9), Request(1, "toy", 2e-9),
                 Request(2, "toy2", 3e-9), Request(3, "toy2", 4e-9)]
        run = engine.run(trace)
        post = [b for b in run.batches if b.start >= outage_end]
        assert post  # work waited out the outage
        assert post[0].done - post[0].start == pytest.approx(1e-6)

    def test_deploy_total_matches_component_sum(self):
        cache = LayerMemoCache()
        acc = make_smart()
        total = cache.deploy_total(acc, TOY, 4)
        run = cache.simulate(acc, TOY, 4)
        assert total == pytest.approx(
            sum(l.deploy_time for l in run.layers))
        assert total == run.component_totals()["deploy"]
        assert total > 0


class TestPersistentMemo:
    def test_totals_round_trip_without_simulation(self):
        source = LayerMemoCache()
        acc = make_smart()
        latency = source.latency_total(acc, TOY, 4)
        energy = source.energy_total(acc, TOY, 4)
        deploy = source.deploy_total(acc, TOY, 4)
        rows = source.export_totals()
        assert len(rows) == 1

        warm = LayerMemoCache()
        assert warm.load_totals(rows) == 1
        assert warm.latency_total(make_smart(), TOY, 4) == latency
        assert warm.energy_total(make_smart(), TOY, 4) == energy
        assert warm.deploy_total(make_smart(), TOY, 4) == deploy
        # everything came from the seed: no layer was ever simulated
        assert warm.stats.misses == 0
        assert len(warm) == 0

    def test_export_carries_unused_seeds_forward(self):
        source = LayerMemoCache()
        source.latency_total(make_smart(), TOY, 4)
        source.energy_total(make_smart(), TOY, 4)
        rows = source.export_totals()

        warm = LayerMemoCache()
        warm.load_totals(rows)
        warm.latency_total(make_smart(), TOY2, 2)  # a different key
        warm.energy_total(make_smart(), TOY2, 2)
        re_exported = warm.export_totals()
        assert len(re_exported) == 2  # old seed + new work

    def test_corrupt_rows_are_skipped(self):
        cache = LayerMemoCache()
        assert cache.load_totals([["bad"], None, 7]) == 0
        # right arity, wrong types: still skipped, never raised
        assert cache.load_totals(
            [["a", "b", "not-an-int", "x", "y", "z"],
             ["a", "b", 4, 1.0, None, 3.0]]) == 0
        assert not cache._seeded

    def test_reference_refuses_non_stock_policies(self):
        """run_reference predates the seams: auditing a simulator
        with a custom scale/flush/admission/steal policy must raise a
        clean ConfigError, not crash or silently ignore the policy."""
        from repro.serving import DepthAdmission
        from repro.serving.reference import run_reference

        trace = toy_trace(4)
        for kwargs in (
            {"autoscale": ForecastScalePolicy()},
            {"flush": EdfFlush({"toy": 1})},
            {"admission": DepthAdmission(depth=4)},
            {"steal": WorkStealPolicy()},
        ):
            with pytest.raises(ConfigError):
                run_reference(toy_simulator(**kwargs), trace)

    def test_warm_start_matches_cold_results(self, tmp_path):
        """A --persist-memo warm run must reproduce the cold run's
        per-request floats exactly (JSON round-trips floats)."""
        from repro.runtime import ResultCache
        store = ResultCache(cache_dir=tmp_path)
        trace = toy_trace(40)

        cold_sim = toy_simulator(replicas=2)
        cold = cold_sim.run(trace)
        assert store_persistent_memo(cold_sim.cache, store) > 0

        warm_cache = LayerMemoCache()
        assert load_persistent_memo(warm_cache, store) > 0
        warm = toy_simulator(replicas=2, cache=warm_cache).run(trace)
        assert warm.latencies == cold.latencies
        assert warm.energy_per_request == cold.energy_per_request
        assert warm_cache.stats.misses == 0  # not one layer simulated

    def test_load_is_a_noop_when_pool_absent(self, tmp_path):
        from repro.runtime import ResultCache
        assert load_persistent_memo(
            LayerMemoCache(), ResultCache(cache_dir=tmp_path)) == 0
