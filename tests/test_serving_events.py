"""Tests for the discrete-event engine and its control plane.

Covers the event-ordering edge cases the retired arrival-driven loop
could not express, plus autoscaling, failure injection with batch
re-dispatch, admission control and heterogeneous replica pools.
"""

import pytest

from repro.core import make_smart, make_tpu
from repro.errors import ConfigError
from repro.serving import (
    AutoscalePolicy,
    Event,
    EventKind,
    EventQueue,
    FailurePlan,
    FixedSizeBatching,
    LayerMemoCache,
    Outage,
    ServingSimulator,
    SloPolicy,
    TimeoutBatching,
)
from repro.serving.workload import Request
from repro.systolic.layers import ConvLayer, Network

TOY = Network("toy", (
    ConvLayer("c1", 16, 16, 8, 16, 3, 3, padding=1),
    ConvLayer("c2", 16, 16, 16, 16, 3, 3, padding=1),
    ConvLayer("fc", 1, 1, 4096, 10, 1, 1, kind="fc"),
))
TOY2 = Network("toy2", TOY.layers[:2])


def toy_simulator(**kwargs):
    kwargs.setdefault("policy", FixedSizeBatching(batch_size=4))
    kwargs.setdefault("networks", {"toy": TOY, "toy2": TOY2})
    return ServingSimulator(make_smart(), **kwargs)


def toy_trace(n, gap=1e-5, model="toy", start_id=0):
    return [Request(start_id + i, model, (i + 1) * gap) for i in range(n)]


class TestEventQueue:
    def test_time_order(self):
        q = EventQueue()
        q.push(2.0, EventKind.ARRIVAL)
        q.push(1.0, EventKind.BATCH_DONE)
        assert q.pop().time == 1.0
        assert q.pop().time == 2.0

    def test_kind_priority_at_equal_time(self):
        """A flush due exactly at an arrival fires first; the drain
        runs after everything else — the retired loop's semantics."""
        q = EventQueue()
        q.push(1.0, EventKind.DRAIN)
        q.push(1.0, EventKind.ARRIVAL)
        q.push(1.0, EventKind.FLUSH, key="m")
        q.push(1.0, EventKind.BATCH_DONE)
        kinds = [q.pop().kind for _ in range(4)]
        assert kinds == [EventKind.FLUSH, EventKind.ARRIVAL,
                         EventKind.BATCH_DONE, EventKind.DRAIN]

    def test_simultaneous_flushes_fire_in_model_order(self):
        q = EventQueue()
        q.push(1.0, EventKind.FLUSH, key="zebra", payload="z")
        q.push(1.0, EventKind.FLUSH, key="alex", payload="a")
        assert q.pop().payload == "a"
        assert q.pop().payload == "z"

    def test_insertion_order_breaks_remaining_ties(self):
        q = EventQueue()
        q.push(1.0, EventKind.ARRIVAL, payload=1)
        q.push(1.0, EventKind.ARRIVAL, payload=2)
        assert [q.pop().payload, q.pop().payload] == [1, 2]

    def test_thousands_of_same_timestamp_events_pop_stably(self):
        """Tie-break stress: with every event at the same instant, the
        pop order must be exactly a stable sort by (kind, key,
        insertion) — the raw-tuple heap may not perturb a single tie."""
        import random

        rng = random.Random(42)
        kinds = list(EventKind)
        pushed = []
        q = EventQueue()
        for i in range(5000):
            kind = rng.choice(kinds)
            key = rng.choice(["", "alex", "m", "zebra"])
            q.push(1.0, kind, key=key, payload=i)
            pushed.append((kind, key, i))
        expected = sorted(pushed, key=lambda p: (int(p[0]), p[1], p[2]))
        popped = [q.pop() for _ in range(5000)]
        assert [(e.kind, e.key, e.payload) for e in popped] == expected
        assert all(e.time == 1.0 for e in popped)
        assert len(q) == 0

    def test_pop_rebuilds_event_objects(self):
        q = EventQueue()
        q.push(2.5, EventKind.FLUSH, key="m", payload=("m", 2.5))
        event = q.pop()
        assert isinstance(event, Event)
        assert event.kind is EventKind.FLUSH
        assert (event.time, event.key, event.payload) == (2.5, "m", ("m", 2.5))


class TestLatencyWindow:
    def test_matches_percentile_with_eviction(self):
        """The incremental window must agree with a full re-sort of
        the equivalent deque at every step, across evictions."""
        import random
        from collections import deque

        from repro.eval.report import percentile
        from repro.serving.events import _LatencyWindow

        rng = random.Random(9)
        window = _LatencyWindow(32)
        shadow = deque(maxlen=32)
        for _ in range(500):
            value = rng.choice([rng.uniform(0, 1), rng.choice([0.25, 0.5])])
            window.append(value)
            shadow.append(value)
            for q in (0.0, 50.0, 95.0, 99.0, 100.0):
                assert window.percentile(q) == percentile(shadow, q)

    def test_empty_window_rejected(self):
        from repro.serving.events import _LatencyWindow

        with pytest.raises(ConfigError):
            _LatencyWindow(0)
        with pytest.raises(ConfigError):
            _LatencyWindow(4).percentile(95)


class TestEventOrderingEdgeCases:
    def test_deadline_strictly_between_arrivals_flushes_at_instant(self):
        """A timeout deadline landing strictly between two arrivals
        must flush at its own instant, not at the later arrival."""
        policy = TimeoutBatching(max_batch=8, max_wait=1e-4)
        sim = toy_simulator(policy=policy)
        deadline = 2e-5 + 1e-4
        trace = [Request(0, "toy", 0.0), Request(1, "toy", 2e-5),
                 Request(2, "toy", 5.0)]  # deadline << second gap
        result = sim.run(trace)
        first = result.batches[0]
        assert first.size == 2
        assert first.flush == pytest.approx(1e-4)  # head's own budget
        assert first.start == pytest.approx(1e-4)  # replica was idle
        assert deadline < 5.0  # sanity: strictly between arrivals

    def test_fixed_policy_stragglers_drain_deterministically(self):
        """Leftovers of every model drain at the last arrival, in
        stable (sorted-model) order, identically across runs."""
        trace = (toy_trace(5, model="toy")
                 + toy_trace(3, gap=1.1e-5, model="toy2", start_id=100))
        end = max(r.arrival for r in trace)
        first = toy_simulator().run(trace)
        second = toy_simulator().run(trace)
        stragglers = [b for b in first.batches if b.size < 4]
        assert [b.model for b in stragglers] == ["toy", "toy2"]
        assert all(b.flush == end for b in stragglers)
        assert first.latencies == second.latencies
        assert [b.replica for b in first.batches] == [
            b.replica for b in second.batches
        ]

    def test_simultaneous_cross_model_arrivals_stable_and_cacheproof(self):
        """Arrivals at the same instant across models dispatch in a
        stable order; cached and uncached paths are byte-identical."""
        trace = []
        for i in range(8):
            trace.append(Request(2 * i, "toy", 1e-5))
            trace.append(Request(2 * i + 1, "toy2", 1e-5))
        cached = toy_simulator(replicas=2).run(trace)
        uncached = toy_simulator(
            replicas=2, cache=LayerMemoCache(enabled=False)
        ).run(trace)
        # both queues fill at the same instant; "toy" saw its 4th
        # request first in trace order, so it flushes first
        assert [b.model for b in cached.batches] == [
            "toy", "toy2", "toy", "toy2"
        ]
        assert cached.latencies == uncached.latencies
        assert cached.energy_per_request == uncached.energy_per_request
        assert [b.replica for b in cached.batches] == [
            b.replica for b in uncached.batches
        ]


class TestUnsortedTraces:
    def test_engine_drains_at_the_true_last_arrival(self):
        """Regression: the end-of-trace drain was scheduled at the
        *input-order* last arrival, so an unsorted trace under a
        deadline-less policy left late requests queued forever."""
        from repro.serving import ClusterEngine

        engine = ClusterEngine(
            [make_smart()], FixedSizeBatching(batch_size=4),
            "round_robin",
            service_fn=lambda acc, model, size: 1e-6,
            energy_fn=lambda acc, model, size: 1e-9,
        )
        trace = [Request(0, "toy", 0.0), Request(2, "toy", 2e-3),
                 Request(1, "toy", 1e-3)]  # out of time order
        run = engine.run(trace)
        assert set(run.done) == {0, 1, 2}
        assert run.batches[-1].flush == pytest.approx(2e-3)


class TestAutoscaling:
    # time constants sized to the toy network's ~0.4us batch service
    POLICY = AutoscalePolicy(min_replicas=1, max_replicas=4,
                             high_queue=6, low_queue=1,
                             tick=5e-7, warmup=2e-6, cooldown=1e-6)

    def overloaded(self, **kwargs):
        sim = toy_simulator(replicas=1, dispatch="least_loaded",
                            policy=TimeoutBatching(max_batch=4,
                                                   max_wait=1e-6),
                            **kwargs)
        # 200 requests arriving far faster than one replica serves
        return sim, toy_trace(200, gap=2e-8)

    def test_scales_up_under_queue_pressure(self):
        sim, trace = self.overloaded(autoscale=self.POLICY)
        result = sim.run(trace)
        assert result.peak_replicas > 1
        assert any(a == "up" for _, a in result.scale_events)
        assert result.to_row()["replicas_peak"] == result.peak_replicas

    def test_warmup_delays_first_service(self):
        sim, trace = self.overloaded(autoscale=self.POLICY)
        result = sim.run(trace)
        ups = [t for t, a in result.scale_events if a == "up"]
        assert ups
        for batch in result.batches:
            if batch.replica >= 1:  # an autoscaled replica
                born = min(t for t in ups)
                assert batch.start >= born + self.POLICY.warmup

    def test_scales_back_down_when_quiet(self):
        """A long quiet tail retires the extra replicas to min."""
        sim, trace = self.overloaded(autoscale=self.POLICY)
        # quiet tail: one straggler model-toy request much later
        tail = [Request(1000, "toy", 1e-3)]
        result = sim.run(trace + tail)
        assert any(a == "down" for _, a in result.scale_events)
        assert result.low_replicas <= result.peak_replicas
        assert result.replica_trace[-1][1] <= result.peak_replicas

    def test_faster_than_static_single_replica(self):
        sim, trace = self.overloaded(autoscale=self.POLICY)
        static_sim, _ = self.overloaded()
        scaled = sim.run(trace)
        static = static_sim.run(trace)
        assert scaled.latency_percentile(95) < \
            static.latency_percentile(95)

    def test_oscillating_load_revives_retired_replicas(self):
        """Regression: every scale-up appended a brand-new Replica, so
        burst/quiet cycles grew the pool list (which every dispatch
        scans) without bound; a scale-up must revive a retired replica
        instead, keeping indices within the policy's max."""
        policy = AutoscalePolicy(min_replicas=1, max_replicas=2,
                                 high_queue=4, low_queue=1,
                                 tick=5e-7, warmup=1e-6, cooldown=1e-6)
        sim = toy_simulator(replicas=1, dispatch="least_loaded",
                            policy=TimeoutBatching(max_batch=4,
                                                   max_wait=1e-6),
                            autoscale=policy)
        trace, rid = [], 0
        for cycle in range(12):  # bursts split by long quiet gaps
            base = cycle * 1e-3
            for i in range(24):
                trace.append(Request(rid, "toy", base + i * 2e-8))
                rid += 1
        result = sim.run(trace)
        ups = sum(1 for _, a in result.scale_events if a == "up")
        downs = sum(1 for _, a in result.scale_events if a == "down")
        assert ups >= 3 and downs >= 2  # the pool really oscillated
        assert all(b.replica < policy.max_replicas
                   for b in result.batches)
        assert result.peak_replicas <= policy.max_replicas

    def test_p95_metric_scales(self):
        policy = AutoscalePolicy(min_replicas=1, max_replicas=4,
                                 metric="p95", target_p95=1e-6,
                                 tick=5e-7, warmup=2e-6, cooldown=1e-6)
        sim, trace = self.overloaded(autoscale=policy)
        result = sim.run(trace)
        assert result.peak_replicas > 1

    def test_policy_validation(self):
        with pytest.raises(ConfigError):
            AutoscalePolicy(min_replicas=0)
        with pytest.raises(ConfigError):
            AutoscalePolicy(min_replicas=4, max_replicas=2)
        with pytest.raises(ConfigError):
            AutoscalePolicy(metric="cpu")
        with pytest.raises(ConfigError):
            AutoscalePolicy(metric="p95")  # needs target_p95
        with pytest.raises(ConfigError):
            AutoscalePolicy(high_queue=4, low_queue=6)
        with pytest.raises(ConfigError):
            AutoscalePolicy(tick=0.0)


class TestFailureInjection:
    def test_inflight_batches_redispatch_to_survivors(self):
        # a burst builds a deep backlog on both replicas, then replica
        # 0 dies mid-backlog with batches running and scheduled
        outage = Outage(replica=0, at=5e-6, until=2e-5)
        sim = toy_simulator(replicas=2, dispatch="least_loaded",
                            failures=FailurePlan(outages=(outage,)))
        trace = toy_trace(200, gap=2e-8)
        result = sim.run(trace)
        assert result.redispatched >= 1
        assert result.wasted_energy > 0
        # every request still completes, exactly once
        assert len(result.latencies) == 200
        assert all(l != float("inf") for l in result.latencies)
        assert sum(b.size for b in result.batches) == 200
        # no served batch overlaps the outage on the dead replica
        for batch in result.batches:
            if batch.replica == 0:
                assert batch.done <= outage.at or batch.start >= outage.until
        # the trajectory dips to 1 and recovers to 2
        counts = [n for _, n in result.replica_trace]
        assert min(counts) == 1
        assert counts[-1] == 2

    def test_total_outage_parks_work_until_recovery(self):
        outage = Outage(replica=0, at=1e-5, until=3e-3)
        sim = toy_simulator(replicas=1,
                            failures=FailurePlan(outages=(outage,)))
        trace = toy_trace(12, gap=2e-6)
        result = sim.run(trace)
        assert all(l != float("inf") for l in result.latencies)
        # whatever was flushed during the outage waited for recovery
        late = [b for b in result.batches if b.flush >= outage.at]
        assert late
        assert all(b.start >= outage.until for b in late)

    def test_sampled_plan_is_deterministic(self):
        plan = FailurePlan(count=2, downtime_frac=0.2, seed=9)
        sim_a = toy_simulator(replicas=3, failures=plan)
        sim_b = toy_simulator(replicas=3, failures=plan)
        trace = toy_trace(80, gap=4e-6)
        assert sim_a.run(trace).latencies == sim_b.run(trace).latencies

    def test_failure_storm_scenario_carries_faults(self):
        from repro.serving import get_scenario
        assert get_scenario("failure-storm").faults > 0

    def test_scenario_faults_sample_from_the_run_seed(self):
        """Regression: the scenario-carried plan pinned seed 0, so
        sweeping the run seed varied the arrivals but replayed the
        same outage pattern every time."""
        sim = ServingSimulator("SMART", replicas=3,
                               policy=TimeoutBatching())
        dips_by_seed = []
        for seed in (1, 2):
            result = sim.run_scenario("failure-storm", 150, seed=seed)
            span = result.requests[-1].arrival - result.requests[0].arrival
            dips_by_seed.append(tuple(
                round((t - result.requests[0].arrival) / span, 3)
                for t, n in result.replica_trace[1:] if n < 3
            ))
        assert dips_by_seed[0] and dips_by_seed[1]
        assert dips_by_seed[0] != dips_by_seed[1]

    def test_overlapping_outages_merge_to_their_union(self):
        """Regression: with overlapping windows on one replica, the
        first RECOVER to pop would end every later window early — the
        replica must stay down for the union."""
        plan = FailurePlan(outages=(
            Outage(replica=0, at=1e-5, until=1e-4),
            Outage(replica=0, at=4e-5, until=7e-5),   # nested
            Outage(replica=0, at=9e-5, until=1.5e-4),  # overlaps tail
            Outage(replica=1, at=2e-5, until=3e-5),    # other replica
        ))
        resolved = plan.resolve(0.0, 1e-3, 2)
        assert resolved == (
            Outage(replica=0, at=1e-5, until=1.5e-4),
            Outage(replica=1, at=2e-5, until=3e-5),
        )
        # and the engine honours the union: nothing served on replica
        # 0 inside the merged window
        sim = toy_simulator(replicas=2, dispatch="least_loaded",
                            failures=plan)
        result = sim.run(toy_trace(200, gap=2e-8))
        for batch in result.batches:
            if batch.replica == 0:
                assert batch.done <= 1e-5 or batch.start >= 1.5e-4

    def test_recovery_does_not_resurrect_retired_replicas(self):
        """Regression: a RECOVER whose FAIL was skipped (the replica
        was already scaled down) must not force the replica back up —
        only the autoscaler may grant capacity it retired."""
        autoscale = AutoscalePolicy(min_replicas=1, max_replicas=2,
                                    high_queue=50, low_queue=2,
                                    tick=5e-7, warmup=2e-6,
                                    cooldown=1e-6)
        plan = FailurePlan(outages=(
            Outage(replica=1, at=1e-4, until=1.5e-4),
        ))
        sim = toy_simulator(replicas=2, dispatch="least_loaded",
                            policy=TimeoutBatching(max_batch=4,
                                                   max_wait=1e-6),
                            autoscale=autoscale, failures=plan)
        # light traffic: the autoscaler retires one replica long
        # before the outage window opens
        result = sim.run(toy_trace(40, gap=5e-7))
        assert any(a == "down" for _, a in result.scale_events)
        downs = [t for t, a in result.scale_events if a == "down"]
        assert downs[0] < 1e-4
        # after the retirement, nothing ever lifts the pool back up
        tail = [n for t, n in result.replica_trace if t >= downs[0]]
        assert tail and all(n == 1 for n in tail)

    def test_shard_pin_survives_other_replicas_failing(self):
        """Regression: shard hashed into the shrinking candidate list,
        remapping every model when any replica failed; the pin must
        stay on the model's healthy home replica."""
        import zlib
        home = zlib.crc32(b"toy") % 3
        other = (home + 1) % 3
        plan = FailurePlan(outages=(
            Outage(replica=other, at=3e-6, until=3e-5),
        ))
        sim = toy_simulator(replicas=3, dispatch="shard", failures=plan)
        result = sim.run(toy_trace(200, gap=2e-8))
        assert {b.replica for b in result.batches
                if b.model == "toy"} == {home}

    def test_plan_validation(self):
        with pytest.raises(ConfigError):
            FailurePlan(count=-1)
        with pytest.raises(ConfigError):
            FailurePlan(downtime_frac=1.5)
        with pytest.raises(ConfigError):
            Outage(replica=0, at=2.0, until=1.0)
        with pytest.raises(ConfigError):
            toy_simulator(failures=FailurePlan(
                outages=(Outage(replica=9, at=1e-5, until=2e-5),)
            )).run(toy_trace(4))


class TestAdmissionControl:
    def test_sheds_beyond_depth_and_reports_attainment(self):
        slo = SloPolicy(target=2e-4, shed_depth=8)
        sim = toy_simulator(replicas=1, slo=slo)
        result = sim.run(toy_trace(40, gap=2e-8))
        assert result.shed
        assert 0 < result.shed_rate < 1
        assert result.latencies[0] != float("inf")  # first always admitted
        for rid in result.shed:
            assert result.latencies[rid] == float("inf")
            assert result.energy_per_request[rid] == 0.0
        assert result.slo_attainment < 1.0
        row = result.to_row()
        assert row["shed_rate"] == pytest.approx(result.shed_rate)
        assert row["slo_attain"] == pytest.approx(result.slo_attainment)
        # percentiles are over served requests only
        assert result.latency_percentile(99) != float("inf")
        # energy is per *served* request: shed zeros must not deflate
        served = len(result.requests) - len(result.shed)
        assert row["energy_per_req_uj"] == pytest.approx(
            sum(result.energy_per_request) / served * 1e6
        )

    def test_no_shedding_without_depth(self):
        slo = SloPolicy(target=2e-4)
        result = toy_simulator(replicas=1, slo=slo).run(
            toy_trace(40, gap=2e-8))
        assert not result.shed
        assert 0.0 <= result.slo_attainment <= 1.0

    def test_policy_validation(self):
        with pytest.raises(ConfigError):
            SloPolicy(target=0.0)
        with pytest.raises(ConfigError):
            SloPolicy(target=1e-3, shed_depth=0)


class TestHeterogeneousPool:
    def test_mixed_pool_runs_and_reports_first_config(self):
        sim = toy_simulator(accelerators=[make_smart(), make_tpu()],
                            dispatch="fastest_finish")
        result = sim.run(toy_trace(24, gap=1e-5))
        assert sim.heterogeneous
        assert result.replicas == 2
        assert result.accelerator == make_smart().name
        assert all(l > 0 for l in result.latencies)

    def test_fastest_finish_prefers_faster_replica_when_idle(self):
        """With big gaps both replicas are idle at every flush, so
        every batch lands on whichever serves a batch quicker."""
        smart, tpu = make_smart(), make_tpu()
        sim = toy_simulator(accelerators=[tpu, smart],
                            dispatch="fastest_finish")
        result = sim.run(toy_trace(16, gap=5e-2))
        cache = sim.cache
        quicker = min(
            (0, 1),
            key=lambda i: cache.simulate([tpu, smart][i], TOY, 4).latency,
        )
        assert {b.replica for b in result.batches} == {quicker}

    def test_heterogeneous_capacity_sums_per_replica(self):
        from repro.serving import get_scenario
        scenario = get_scenario("steady")
        solo_smart = ServingSimulator(make_smart(), replicas=1)
        solo_tpu = ServingSimulator(make_tpu(), replicas=1,
                                    cache=solo_smart.cache)
        mixed = ServingSimulator(accelerators=[make_smart(), make_tpu()],
                                 cache=solo_smart.cache)
        assert mixed.capacity_rps(scenario) == pytest.approx(
            solo_smart.capacity_rps(scenario)
            + solo_tpu.capacity_rps(scenario)
        )

    def test_empty_pool_rejected(self):
        with pytest.raises(ConfigError):
            ServingSimulator(accelerators=[])


class TestExperimentHelpers:
    def test_parse_autoscale(self):
        from repro.serving.experiments import parse_autoscale
        policy = parse_autoscale("2:6")
        assert (policy.min_replicas, policy.max_replicas) == (2, 6)
        assert parse_autoscale("") is None
        p95 = parse_autoscale("1:4", target_p95_us=1500.0)
        assert p95.metric == "p95"
        assert p95.target_p95 == pytest.approx(1.5e-3)
        with pytest.raises(ConfigError):
            parse_autoscale("fast")

    def test_make_slo(self):
        from repro.serving.experiments import make_slo
        assert make_slo(0.0) is None
        policy = make_slo(1500.0, shed_depth=32)
        assert policy.target == pytest.approx(1.5e-3)
        assert policy.shed_depth == 32
        with pytest.raises(ConfigError):
            make_slo(0.0, shed_depth=32)

    def test_serving_slo_and_autoscale_targets_registered(self):
        from repro.runtime import registry
        names = registry.names()
        assert "serving_slo" in names
        assert "serving_autoscale" in names

    def test_serving_slo_rows(self):
        from repro.serving.experiments import serving_slo
        rows = serving_slo(scenario="overload", requests=150,
                           replicas=1, slo_us=1500.0, shed_depth=24,
                           seed=3)
        assert len(rows) == 1
        assert 0.0 <= rows[0]["slo_attain"] <= 1.0
        assert rows[0]["shed_depth"] == 24

    def test_serving_autoscale_rows(self):
        from repro.serving.experiments import serving_autoscale
        rows = serving_autoscale(scenario="bursty", requests=200,
                                 min_replicas=1, max_replicas=4, seed=3)
        assert len(rows) == 1
        assert rows[0]["replicas_peak"] >= rows[0]["replicas_low"]
        assert rows[0]["scale_ups"] >= 0
