"""Route a serving fleet across regions and compare geo policies.

Walks the PR 8 geo-distributed tier end to end:

1. **zero drift** — a single-region fleet with zero interconnect
   delay reproduces the plain `ServingSimulator`'s per-request
   latencies and energies bit for bit;
2. **interconnect** — the ring topology charges deterministic
   store-and-forward delay per hop, and the same-region path is free;
3. **routing** — the four stock geo policies (`home`, `follow_sun`,
   `cheapest_joule`, `spillover`) route the same diurnal trace over a
   four-region fleet with mixed SMART / SNN / AQFP backends, trading
   SLO attainment against grid price;
4. **fleet accounting** — per-region rows break the winning run down
   by region: share, p95, $/MJ and SLO attainment.

Run:  python examples/serving_geo.py
"""

from repro.eval import render_rows
from repro.serving import (
    GEO_POLICIES,
    GeoRouter,
    Interconnect,
    RegionSpec,
    ServingSimulator,
    default_regions,
    make_policy,
)


def main() -> None:
    seed = 7

    # -- 1. one region + zero delay == the plain engine ---------------
    solo = (RegionSpec("solo", accelerator="SMART", replicas=2),)
    geo = GeoRouter(solo, policy="timeout", batch_size=8,
                    detail=True, mode="inline") \
        .run_scenario("bursty", 2_000, seed=seed)
    mono = ServingSimulator("SMART", replicas=2,
                            policy=make_policy("timeout", 8),
                            dispatch="round_robin") \
        .run_scenario("bursty", 2_000, seed=seed)
    assert geo.detail.latencies == mono.latencies
    assert geo.detail.energy_per_request == mono.energy_per_request
    print("=== zero drift ===")
    print(f"geo[1] reproduces the monolithic engine's "
          f"{len(mono.latencies)} per-request latencies and energies "
          f"bit-exactly")

    # -- 2. the interconnect is deterministic geometry ----------------
    icx = Interconnect(4, topology="ring")
    print("\n=== interconnect: ring of 4 ===")
    for dst in range(4):
        print(f"us-east -> region {dst}: {icx.hops(0, dst)} hop(s), "
              f"{icx.delay(0, dst) * 1e6:.1f} us")

    # -- 3. four geo policies over the same diurnal day ---------------
    regions, n = 4, 3_000
    print(f"\n=== geo policies: {regions} regions, diurnal x {n:,} "
          f"requests, slo 4000 us ===")
    for spec in default_regions(regions):
        print(f"  {spec.name}: {spec.accelerator} x{spec.replicas}, "
              f"{spec.price} USD/MJ, tz {spec.tz}")
    rows = []
    for geo_name in GEO_POLICIES:
        router = GeoRouter(regions, topology="ring", geo=geo_name,
                           policy="timeout", batch_size=8,
                           slo_us=4000.0, mode="inline")
        result = router.run_scenario("diurnal", n, seed=seed)
        row = result.to_row()
        rows.append({k: row[k] for k in (
            "geo", "p95_us", "slo_attain", "remote_frac",
            "net_delay_us", "energy_per_req_uj", "usd_per_req")})
    print(render_rows(rows))

    # -- 4. per-region breakdown of the cheapest-joule run ------------
    router = GeoRouter(regions, topology="ring", geo="cheapest_joule",
                       policy="timeout", batch_size=8, slo_us=4000.0,
                       mode="inline")
    result = router.run_scenario("diurnal", n, seed=seed)
    print("\n=== cheapest_joule, per region ===")
    print(render_rows([
        {k: row[k] for k in ("region", "accelerator", "requests",
                             "share", "p95_us", "slo_attain",
                             "usd_per_mj", "net_delay_us")}
        for row in result.region_rows()]))


if __name__ == "__main__":
    main()
