"""Explore the pipelined CMOS-SFQ array design space (paper Fig 14).

Shows the leakage/energy/area cost of pushing the pipeline frequency
toward the nTron-imposed ~9.7 GHz ceiling, and the resulting array
characteristics SMART adopts (Sec 4.4).

Run:  python examples/design_space.py
"""

from repro.core import PipelinedCmosSfqArray, explore_design_space
from repro.eval import format_table
from repro.units import to_ns


def main() -> None:
    points = explore_design_space()
    headers = ["freq (GHz)", "sub-bank MATs", "repeaters",
               "leakage (mW)", "E/access (pJ)", "area (mm^2)"]
    rows = [
        [f"{p.frequency / 1e9:.2f}", p.subbank_mats, p.htree_repeaters,
         f"{p.leakage_power * 1e3:.1f}", f"{p.access_energy * 1e12:.1f}",
         f"{p.area * 1e6:.1f}"]
        for p in points
    ]
    print("=== Fig 14: pipeline design space ===")
    print(format_table(headers, rows))

    array = PipelinedCmosSfqArray()
    print(f"\nSMART's operating point (Sec 4.4):")
    print(f"  pipeline frequency : {array.pipeline_frequency / 1e9:.2f} GHz")
    print(f"  per-byte interval  : {to_ns(array.byte_interval):.3f} ns")
    print(f"  access latency     : {to_ns(array.access_latency):.2f} ns")
    print(f"  standby power      : {array.leakage_power * 1e3:.0f} mW "
          f"(paper: ~102 mW)")


if __name__ == "__main__":
    main()
