"""Explore the pipelined CMOS-SFQ array design space (paper Fig 14).

Shows the leakage/energy/area cost of pushing the pipeline frequency
toward the nTron-imposed ~9.7 GHz ceiling, and the resulting array
characteristics SMART adopts (Sec 4.4).

The sweep executes through the experiment runtime: each frequency is
one job, evaluated in parallel on a cold run and served from the
content-addressed result cache on a warm one (re-run the script to see
the hits).

Run:  python examples/design_space.py
"""

from repro.core import PipelinedCmosSfqArray
from repro.core.design_space import MAX_PIPELINE_FREQUENCY
from repro.eval import render_rows
from repro.runtime import Runtime, Sweep
from repro.units import GHZ, to_ns


def main() -> None:
    sweep = Sweep("design_space", grid={
        "frequency": [0.5, 1.0, 2.0, 4.0, 6.0, 8.0,
                      MAX_PIPELINE_FREQUENCY / GHZ],
    })
    runtime = Runtime()
    results = runtime.run_sweep(sweep)

    for result in results:
        if result.error:
            print(f"ERROR {result.job.label}: {result.error}")
    rows = [row for result in results for row in result.rows or []]
    print("=== Fig 14: pipeline design space ===")
    print(render_rows(rows))
    summary = runtime.last_summary
    print(f"\n{summary.jobs} design points in {summary.wall_s:.2f}s wall "
          f"({summary.cache_hits} served from cache)")

    array = PipelinedCmosSfqArray()
    print("\nSMART's operating point (Sec 4.4):")
    print(f"  pipeline frequency : {array.pipeline_frequency / 1e9:.2f} GHz")
    print(f"  per-byte interval  : {to_ns(array.byte_interval):.3f} ns")
    print(f"  access latency     : {to_ns(array.access_latency):.2f} ns")
    print(f"  standby power      : {array.leakage_power * 1e3:.0f} mW "
          f"(paper: ~102 mW)")


if __name__ == "__main__":
    main()
