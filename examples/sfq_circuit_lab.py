"""Transient SFQ circuit lab: watch single flux quanta propagate.

Builds the paper's Fig 11 structures with the JoSIM-substitute
transient simulator: a JTL chain, a driver -> PTL -> receiver link, and
the full splitter-unit testbench of the Fig 13 validation.  Prints
pulse arrival times, per-stage delays and dissipated energy.

Run:  python examples/sfq_circuit_lab.py
"""

from repro.spice import (
    Netlist,
    TransientSimulator,
    build_jtl_chain,
    build_ptl_link,
    build_splitter_unit,
)
from repro.spice.circuits import SfqCellLibrary, _add_source_chain
from repro.spice.measure import detect_pulses, pulse_delay
from repro.units import MM, to_ps


def jtl_demo() -> None:
    lib = SfqCellLibrary()
    netlist = Netlist("jtl_demo")
    node, _ = _add_source_chain(netlist, lib, (20e-12, 60e-12))
    _, jjs = build_jtl_chain(netlist, "chain", node, 6, lib)
    result = TransientSimulator(netlist).run(120e-12)
    print("== JTL chain ==")
    for jj in (jjs[0], jjs[-1]):
        times = ", ".join(f"{to_ps(t):.1f} ps"
                          for t in detect_pulses(result, jj))
        print(f"  {jj}: pulses at {times}")
    delay = pulse_delay(result, jjs[0], jjs[-1]) / (len(jjs) - 1)
    print(f"  per-stage delay: {to_ps(delay):.2f} ps")


def ptl_demo() -> None:
    print("\n== PTL links (driver -> line -> receiver) ==")
    for length_mm in (0.1, 0.8, 2.0):
        netlist, probes = build_ptl_link(length_mm * MM)
        window = 60e-12 + 2 * length_mm * MM / 1e8 + 60e-12
        result = TransientSimulator(netlist).run(window)
        delay = pulse_delay(result, probes["launch"], probes["arrive"])
        print(f"  {length_mm:4.1f} mm: {to_ps(delay):6.2f} ps, "
              f"dissipated {result.total_dissipated:.2e} J")


def splitter_demo() -> None:
    print("\n== Splitter unit (the Fig 13 validation testbench) ==")
    netlist, probes = build_splitter_unit(0.4 * MM)
    result = TransientSimulator(netlist).run(160e-12)
    right = pulse_delay(result, probes["launch"], probes["arrive"])
    left = pulse_delay(result, probes["launch"], probes["arrive_left"])
    print(f"  right branch: {to_ps(right):.2f} ps, "
          f"left branch: {to_ps(left):.2f} ps (symmetric)")


if __name__ == "__main__":
    jtl_demo()
    ptl_demo()
    splitter_demo()
