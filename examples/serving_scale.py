"""Stream and shard a million-request serving run across processes.

Walks the PR 7 scale-out pipeline end to end:

1. **streaming** — `stream_trace` yields the exact same seeded trace
   `generate_trace` materialises, bit for bit, with O(1) requests
   resident, and the event engine consumes it lazily;
2. **sharding** — `shard_trace` splits the global trace by each
   model's home replica (the same crc32 pin the `shard` dispatch
   routes with), so the pieces reassemble exactly and replica state
   never couples across workers;
3. **exactness** — a small sharded run with `detail=True` reproduces
   the monolithic engine's per-request latencies bit for bit;
4. **scale** — one `ShardedEngine` run streams a 1,000,000-request
   trace through worker processes and merge-reduces the outcome
   (exact counters/energy, digest percentiles, aggregate req/s).

Run:  python examples/serving_scale.py
"""

import os

from repro.eval import render_rows
from repro.serving import (
    ServingSimulator,
    ShardedEngine,
    generate_trace,
    get_scenario,
    make_policy,
    shard_trace,
    stream_trace,
)


def main() -> None:
    scenario = get_scenario("steady")
    replicas, seed = 2, 7

    # -- 1. streaming is bit-identical, O(1) resident -----------------
    calibrator = ServingSimulator("SMART", replicas=replicas,
                                  policy=make_policy("timeout", 8),
                                  dispatch="shard")
    rate = scenario.load * calibrator.capacity_rps(scenario)
    materialised = generate_trace(scenario, rate, 5_000, seed=seed)
    streamed = tuple(stream_trace(scenario, rate, 5_000, seed=seed))
    assert streamed == materialised
    print("=== streaming ===")
    print(f"stream_trace == generate_trace on "
          f"{len(materialised)} requests: bit-identical")

    # -- 2. the shard split reassembles exactly -----------------------
    shards = 2
    pieces = [tuple(shard_trace(scenario, rate, 5_000, seed,
                                shards=shards, shard=k,
                                replicas=replicas))
              for k in range(shards)]
    ids = sorted(r.request_id for piece in pieces for r in piece)
    assert ids == list(range(5_000))  # nothing lost or duplicated
    print("\n=== sharding ===")
    for k, piece in enumerate(pieces):
        models = sorted({r.model for r in piece})
        print(f"shard {k}: {len(piece)} requests, models {models}")

    # -- 3. sharded == monolithic, bit for bit ------------------------
    mono = calibrator.run_scenario(scenario, 5_000, seed=seed)
    merged = ShardedEngine(shards, replicas=replicas,
                           policy="timeout", detail=True,
                           mode="inline").run_scenario(
                               scenario, 5_000, seed=seed).detail
    assert merged.latencies == mono.latencies
    assert merged.energy_per_request == mono.energy_per_request
    print("\n=== exactness ===")
    print(f"sharded run reproduces the monolithic engine's "
          f"{len(mono.latencies)} per-request latencies and energies "
          f"bit-exactly")

    # -- 4. one million requests across worker processes --------------
    n = 1_000_000
    shards = max(2, min(8, os.cpu_count() or 2))
    engine = ShardedEngine(shards, replicas=shards, policy="timeout")
    result = engine.run_scenario(scenario, n, seed=seed)
    print(f"\n=== scale: {n:,} requests across {shards} worker "
          f"shard(s) ===")
    print(render_rows([result.to_row()]))
    print(f"\nwall time          : {result.wall_s:.1f}s")
    print(f"aggregate rate     : {result.simulated_rps:,.0f} "
          f"simulated req/s of wall time")
    print(f"slowest shard      : "
          f"{max(o.wall_s for o in result.outcomes):.1f}s "
          f"({max(o.requests for o in result.outcomes):,} requests)")
    print(f"digest buckets     : {len(result.digest.counts)} "
          f"(vs {n:,} raw latencies)")


if __name__ == "__main__":
    main()
