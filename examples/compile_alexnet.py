"""Run the ILP compiler over AlexNet, layer by layer (paper Sec 4.3).

For every compute layer: unroll the fold DAG, extract memory objects
(weight tiles, input stripes, outputs, psum accumulators), solve the
allocation/prefetch ILP with HiGHS, and compare against the greedy
baseline.

Run:  python examples/compile_alexnet.py
"""

from repro.compiler import GreedyCompiler, IlpCompiler, LayerDag
from repro.eval import format_table
from repro.models import get_model
from repro.systolic.mapping import WeightStationaryMapping


def main() -> None:
    network = get_model("AlexNet")
    rows = []
    for layer in network.compute_layers():
        mapping = WeightStationaryMapping(layer, 64, 256)
        dag = LayerDag.from_mapping(mapping, max_iterations=12)
        ilp = IlpCompiler().compile(dag)
        greedy = GreedyCompiler().compile(dag)
        prefetch = ilp.schedule.prefetch_distance("alpha[3]") if (
            dag.iterations > 3
        ) else 0
        rows.append([
            layer.name, mapping.folds, dag.iterations, ilp.variables,
            f"{ilp.schedule.objective_value * 1e6:.1f}",
            f"{greedy.objective_value * 1e6:.1f}",
            prefetch,
        ])
    print("=== ILP compiler on AlexNet ===")
    print(format_table(
        ["layer", "folds", "DAG iters", "ILP vars",
         "ILP saved (us)", "greedy saved (us)", "alpha prefetch (edges)"],
        rows,
    ))
    print("\nThe ILP never loses to the greedy baseline; weight tiles "
          "are prefetched ahead of their Read_Weights edge (Fig 15).")


if __name__ == "__main__":
    main()
