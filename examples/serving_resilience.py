"""Survive a failure storm: retries, hedging and graceful degradation.

Walks the PR 9 resilience tier end to end:

1. **zero drift** — `resilience="none"` reproduces the plain engine's
   per-request latencies and energies bit for bit: the seam is free
   when unused;
2. **the failure storm** — the same fault-carrying trace served under
   `none`, `retry`, `hedge` and `degrade`, trading SLO attainment
   against duplicate/cancelled work (the README's resilience table);
3. **why hedging wins here** — the storm's SLO misses are
   fault-redispatch victims landing *just* over the deadline; a late
   hedge (delay just under the SLO) duplicates only those onto the
   second-best replica, where a singleton completes in microseconds;
4. **fault-tolerant scale-out** — a sharded run with `retry` armed
   still merges bit-exactly, and a crashed worker shard is re-run
   and checkpointed rather than killing the run.

Run:  python examples/serving_resilience.py
"""

from repro.eval import render_rows
from repro.serving import (
    FailurePlan,
    ServingSimulator,
    ShardedEngine,
    SloPolicy,
    generate_trace,
    get_scenario,
    make_policy,
)

SLO_US = 3000.0


def storm(resilience, *, n=800, seed=7):
    """The failure-storm cell: 6 replicas, shard dispatch, 3 ms SLO."""
    scenario = get_scenario("failure-storm")
    sim = ServingSimulator("SMART", replicas=6,
                           policy=make_policy("timeout", 8),
                           dispatch="shard",
                           slo=SloPolicy(target=SLO_US * 1e-6),
                           resilience=resilience)
    rate = scenario.load * sim.capacity_rps(scenario)
    trace = generate_trace(scenario, rate, n, seed)
    failures = FailurePlan(count=scenario.faults, seed=seed)
    return sim.run(trace, scenario=scenario.name, rate=rate,
                   failures=failures)


def main() -> None:
    # -- 1. the seam is free when unused ------------------------------
    base = storm(None)
    none = storm("none")
    assert none.latencies == base.latencies
    assert none.energy_per_request == base.energy_per_request
    print("=== zero drift ===")
    print(f"resilience='none' reproduces all {len(base.latencies)} "
          f"per-request latencies and energies bit-exactly")

    # -- 2. the storm under every policy ------------------------------
    print(f"\n=== failure storm: 6 replicas, shard dispatch, "
          f"slo {SLO_US:.0f} us ===")
    # total joules = served work + waste (aborted partial batches,
    # cancelled duplicates, losing duplicate completions)
    energy_base = sum(base.energy_per_request) + base.wasted_energy
    rows = []
    for spec in (None, "retry:timeout_us=2700,budget=1",
                 "hedge:delay_us=2700", "degrade:timeout_us=2700"):
        result = storm(spec)
        energy = sum(e for e in result.energy_per_request
                     if e != float("inf")) + result.wasted_energy
        rows.append({
            "resilience": spec or "none",
            "p99_us": round(result.latency_percentile(99) * 1e6, 1),
            "slo_attain": round(result.slo_attainment, 4),
            "timeouts": result.timeouts,
            "dupes": result.retries + result.hedges,
            "cancels": result.cancels,
            "degraded": result.degraded,
            "energy_x": round(energy / energy_base, 3),
        })
    print(render_rows(rows))

    # -- 3. the rescue, request by request ----------------------------
    hedge = storm("hedge:delay_us=2700")
    slo = SLO_US * 1e-6
    rescued = sum(1 for a, b in zip(base.latencies, hedge.latencies)
                  if a > slo >= b)
    broken = sum(1 for a, b in zip(base.latencies, hedge.latencies)
                 if a <= slo < b)
    print("\n=== why the late hedge wins ===")
    print(f"misses under none: "
          f"{sum(1 for v in base.latencies if v > slo)} "
          f"(fault-redispatch victims just over the deadline)")
    print(f"rescued by hedge: {rescued}, newly broken: {broken}, "
          f"hedges launched: {hedge.hedges}, "
          f"losers cancelled: {hedge.cancels}")

    # -- 4. fault-tolerant scale-out ----------------------------------
    retry_spec = "retry:timeout_us=400,budget=2"
    mono = ServingSimulator("SMART", replicas=4,
                            policy=make_policy("timeout", 8),
                            dispatch="shard",
                            slo=SloPolicy(target=900e-6),
                            resilience=retry_spec) \
        .run_scenario("steady", 2_000, seed=7)
    shard = ShardedEngine(2, replicas=4, policy="timeout", batch_size=8,
                          slo_us=900, detail=True,
                          resilience=retry_spec, shard_retries=2) \
        .run_scenario("steady", 2_000, seed=7)
    assert shard.detail.latencies == mono.latencies
    assert shard.detail.energy_per_request == mono.energy_per_request
    print("\n=== sharded + retry ===")
    print(f"2-shard run with {mono.retries} deadline retries merges "
          f"bit-exactly with the monolithic engine; crashed worker "
          f"shards re-run with capped backoff (shard_retries=2) and "
          f"checkpoint=PATH resumes interrupted runs")


if __name__ == "__main__":
    main()
