"""Warm-fleet scale-out: prewarm, broadcast, and reuse the pool.

Walks the PR 10 warm path end to end:

1. **prewarm** — `ServingSimulator.prewarm` fills every memo totals
   cell a run can ask for and returns a picklable `MemoSnapshot`;
2. **broadcast** — a warm `ShardedEngine` ships that snapshot to its
   worker pool once via the pool initializer; warm workers serve the
   whole trace with zero layer simulations (`misses == 0`);
3. **exactness** — the warm run is bit-identical (latencies AND
   energies) to a cold one: warmth moves work, never answers;
4. **pool reuse** — consecutive runs are served by the same resident
   worker pool instead of forking a fresh one per call;
5. **warm geo** — the same snapshot machinery warms every region of a
   stormy multi-region `GeoRouter` run.

Run:  python examples/serving_warm.py
"""

from repro.serving import (
    GeoRouter,
    MemoSnapshot,
    LayerMemoCache,
    ServingSimulator,
    ShardedEngine,
    make_policy,
)

SEED = 7
N = 20_000


def main() -> None:
    # -- 1. prewarm: the parent fills the memo once -------------------
    calibrator = ServingSimulator("SMART", replicas=2,
                                  policy=make_policy("timeout", 8),
                                  dispatch="shard")
    snapshot = calibrator.prewarm("steady")
    print("=== prewarm ===")
    print(f"snapshot: {len(snapshot)} totals cells "
          f"(latency/energy/deploy x model x batch size)")
    fresh = LayerMemoCache()
    snapshot.install(fresh)
    assert MemoSnapshot.from_cache(fresh).rows == snapshot.rows
    print("round-trip through a fresh cache: exact")

    # -- 2 + 3. warm == cold, and warm workers never simulate ---------
    def run(prewarm):
        engine = ShardedEngine(2, replicas=2, policy="timeout",
                               batch_size=8, detail=True,
                               mode="process", prewarm=prewarm)
        return engine.run_scenario("steady", N, seed=SEED)

    cold = run(False)
    warm = run(True)
    assert warm.detail.latencies == cold.detail.latencies
    assert warm.detail.energy_per_request == \
        cold.detail.energy_per_request
    assert warm.cache.misses == 0
    print("\n=== warm sharded run ===")
    print(f"cold workers simulated {cold.cache.misses} layer cells; "
          f"warm workers simulated {warm.cache.misses}")
    print(f"warm fleet: {warm.cache.seeded} cells shipped, "
          f"{warm.cache.seed_hits} warm hits")
    print(f"{N:,} per-request latencies and energies: bit-identical")
    print(f"cold wall {cold.wall_s:.2f}s -> warm wall "
          f"{warm.wall_s:.2f}s")

    # -- 4. the pool persists across runs -----------------------------
    from repro.runtime import executor
    pools_before = dict(executor._POOLS)
    again = run(True)
    assert again.requests == warm.requests
    reused = any(executor._POOLS.get(k) is v
                 for k, v in pools_before.items())
    print("\n=== pool reuse ===")
    print(f"second warm run reused a resident worker pool: {reused}")

    # -- 5. warm geo: every region's workers start hot ----------------
    def run_geo(prewarm):
        router = GeoRouter(3, topology="ring", storms=2,
                           mode="process", prewarm=prewarm)
        return router.run_scenario("diurnal", N, seed=SEED)

    cold_geo = run_geo(False)
    warm_geo = run_geo(True)
    assert warm_geo.energy == cold_geo.energy
    assert warm_geo.cache.misses == 0
    print("\n=== warm geo (3 regions, 2 storms) ===")
    print(f"warm fleet: {warm_geo.cache.seeded} cells shipped, "
          f"{warm_geo.cache.seed_hits} warm hits, "
          f"0 layer simulations in region workers")
    print(f"energy/requests identical to cold: "
          f"{warm_geo.energy == cold_geo.energy} / "
          f"{warm_geo.requests == cold_geo.requests}")


if __name__ == "__main__":
    main()
