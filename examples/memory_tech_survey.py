"""Survey the cryogenic memory technologies (paper Secs 2-3, Figs 5/7).

Prints the Table 1 comparison, then shows why no single prior
technology works as SuperNPU's SPM: homogeneous replacements (Fig 5)
and heterogeneous SHIFT+X combinations (Fig 7), both normalised to the
SHIFT baseline on AlexNet.

Run:  python examples/memory_tech_survey.py
"""

from repro.eval import (
    fig5_homogeneous,
    fig7_heterogeneous,
    format_table,
    tab1_technologies,
)


def main() -> None:
    print("=== Table 1: cryogenic memory technologies ===")
    rows = tab1_technologies()
    print(format_table(list(rows[0].keys()),
                       [list(r.values()) for r in rows]))

    print("\n=== Fig 5: homogeneous SPM replacement (AlexNet, "
          "latency normalised to SHIFT) ===")
    rows = fig5_homogeneous()
    print(format_table(["SPM", "norm. latency"],
                       [[r["spm"], f"{r['norm_latency']:.2f}"]
                        for r in rows]))

    print("\n=== Fig 7: heterogeneous SHIFT + X (AlexNet) ===")
    rows = fig7_heterogeneous()
    print(format_table(["SPM", "norm. latency"],
                       [[r["spm"], f"{r['norm_latency']:.2f}"]
                        for r in rows]))
    print("\nOnly a fast random-access array (VTM-class or better) "
          "helps, and prefetching (+p) compounds it — the gap SMART's "
          "pipelined CMOS-SFQ array closes at scale.")


if __name__ == "__main__":
    main()
