"""Reproduce the paper's headline comparison across all six CNNs.

Sweeps every evaluation scheme (SHIFT/SRAM/Heter/Pipe/SMART) over the
model zoo for single-image and batch inference, printing the Fig 18/19
rows and geomeans.

Run:  python examples/compare_accelerators.py
"""

from repro.eval import (
    fig18_single_speedup,
    fig19_batch_speedup,
    format_table,
    geomean,
)

SCHEMES = ("SHIFT", "SRAM", "Heter", "Pipe", "SMART")


def report(title: str, rows: list[dict]) -> None:
    headers = ["model"] + list(SCHEMES)
    body = [[r["model"]] + [f"{r[s]:.2f}" for s in SCHEMES] for r in rows]
    gmeans = ["gmean"] + [
        f"{geomean([r[s] for r in rows]):.2f}" for s in SCHEMES
    ]
    print(f"\n=== {title} (speedup over TPU) ===")
    print(format_table(headers, body + [gmeans]))


def main() -> None:
    single = fig18_single_speedup()
    report("Single-image inference", single)
    smart = geomean([r["SMART"] for r in single])
    shift = geomean([r["SHIFT"] for r in single])
    print(f"SMART / SuperNPU = {smart / shift:.2f}x   (paper: 3.9x)")

    batch = fig19_batch_speedup()
    report("Batch inference", batch)
    smart_b = geomean([r["SMART"] for r in batch])
    shift_b = geomean([r["SHIFT"] for r in batch])
    print(f"SMART / SuperNPU = {smart_b / shift_b:.2f}x   (paper: 2.2x)")


if __name__ == "__main__":
    main()
