"""Serve simulated inference traffic on a SMART cluster.

Walks the serving layer end to end: a 10k-request bursty trace over
the model zoo, dynamic batching, a two-replica cluster, and the
layer-result memo cache that makes the whole thing cost only
O(distinct layer x batch pairs) of actual simulation — then re-serves
the same trace uncached to show the difference.

Run:  python examples/serving.py
"""

import time

from repro.eval import render_rows
from repro.serving import (
    LayerMemoCache,
    ServingSimulator,
    get_scenario,
    generate_trace,
    make_policy,
)


def main() -> None:
    scenario = get_scenario("bursty")
    policy = make_policy("timeout", batch_size=8)

    cluster = ServingSimulator("SMART", replicas=2, policy=policy,
                               dispatch="least_loaded")
    rate = scenario.load * cluster.capacity_rps(scenario)
    trace = generate_trace(scenario, rate, n=10_000, seed=7)

    started = time.perf_counter()
    result = cluster.run(trace, scenario=scenario.name, rate=rate)
    cached_wall = time.perf_counter() - started

    print("=== 10k bursty requests on SMART x2 (timeout batching) ===")
    print(render_rows([result.to_row()]))
    print(f"\np50/p95/p99 latency: "
          f"{result.latency_percentile(50) * 1e6:.0f} / "
          f"{result.latency_percentile(95) * 1e6:.0f} / "
          f"{result.latency_percentile(99) * 1e6:.0f} us")
    print(f"batches dispatched : {len(result.batches)} "
          f"(mean size {result.mean_batch:.2f})")
    print(f"layer simulations  : {result.cache.misses} evaluated, "
          f"{result.cache.hits} from the memo "
          f"({result.cache.hit_rate:.1%} hit rate)")
    print(f"wall time          : {cached_wall:.2f}s")

    # The uncached reference path: identical results, none of the reuse.
    uncached = ServingSimulator("SMART", replicas=2, policy=policy,
                                dispatch="least_loaded",
                                cache=LayerMemoCache(enabled=False))
    started = time.perf_counter()
    reference = uncached.run(trace, scenario=scenario.name, rate=rate)
    uncached_wall = time.perf_counter() - started

    assert reference.latencies == result.latencies
    print(f"\nuncached reference : {reference.cache.misses} layer "
          f"simulations, {uncached_wall:.2f}s wall "
          f"({uncached_wall / cached_wall:.0f}x slower, "
          f"identical per-request latencies)")

    # Policy face-off on the same traffic.
    rows = []
    for policy_name in ("fixed", "timeout"):
        simulator = ServingSimulator(
            "SMART", replicas=2,
            policy=make_policy(policy_name, batch_size=8),
            dispatch="least_loaded", cache=cluster.cache,
        )
        rows.append(simulator.run(trace, scenario=scenario.name,
                                  rate=rate).to_row())
    print("\n=== fixed vs timeout batching, same trace ===")
    print(render_rows(rows))


if __name__ == "__main__":
    main()
