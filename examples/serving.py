"""Serve simulated inference traffic on a SMART cluster.

Walks the serving layer end to end: a 10k-request bursty trace over
the model zoo, dynamic batching, a two-replica cluster, and the
layer-result memo cache that makes the whole thing cost only
O(distinct layer x batch pairs) of actual simulation — then re-serves
the same trace uncached to show the difference, and finishes with the
discrete-event control plane: a diurnal wave under SLO-aware
autoscaling — reactive and predictive (Holt forecast) side by side —
a failure storm with batch re-dispatch, and the pluggable scheduling
policies (EDF flush ordering with priority classes, work stealing).

Run:  python examples/serving.py
"""

import time

from repro.eval import render_rows
from repro.serving import (
    AutoscalePolicy,
    EdfFlush,
    FailurePlan,
    ForecastScalePolicy,
    LayerMemoCache,
    ServingSimulator,
    SloPolicy,
    WorkStealPolicy,
    get_scenario,
    generate_trace,
    make_policy,
)


def main() -> None:
    scenario = get_scenario("bursty")
    policy = make_policy("timeout", batch_size=8)

    cluster = ServingSimulator("SMART", replicas=2, policy=policy,
                               dispatch="least_loaded")
    rate = scenario.load * cluster.capacity_rps(scenario)
    trace = generate_trace(scenario, rate, n=10_000, seed=7)

    started = time.perf_counter()
    result = cluster.run(trace, scenario=scenario.name, rate=rate)
    cached_wall = time.perf_counter() - started

    print("=== 10k bursty requests on SMART x2 (timeout batching) ===")
    print(render_rows([result.to_row()]))
    print(f"\np50/p95/p99 latency: "
          f"{result.latency_percentile(50) * 1e6:.0f} / "
          f"{result.latency_percentile(95) * 1e6:.0f} / "
          f"{result.latency_percentile(99) * 1e6:.0f} us")
    print(f"batches dispatched : {len(result.batches)} "
          f"(mean size {result.mean_batch:.2f})")
    print(f"layer simulations  : {result.cache.misses} evaluated, "
          f"{result.cache.hits} from the memo "
          f"({result.cache.hit_rate:.1%} hit rate)")
    print(f"wall time          : {cached_wall:.2f}s")

    # The uncached reference path: identical results, none of the reuse.
    uncached = ServingSimulator("SMART", replicas=2, policy=policy,
                                dispatch="least_loaded",
                                cache=LayerMemoCache(enabled=False))
    started = time.perf_counter()
    reference = uncached.run(trace, scenario=scenario.name, rate=rate)
    uncached_wall = time.perf_counter() - started

    assert reference.latencies == result.latencies
    print(f"\nuncached reference : {reference.cache.misses} layer "
          f"simulations, {uncached_wall:.2f}s wall "
          f"({uncached_wall / cached_wall:.0f}x slower, "
          f"identical per-request latencies)")

    # Policy face-off on the same traffic.
    rows = []
    for policy_name in ("fixed", "timeout"):
        simulator = ServingSimulator(
            "SMART", replicas=2,
            policy=make_policy(policy_name, batch_size=8),
            dispatch="least_loaded", cache=cluster.cache,
        )
        rows.append(simulator.run(trace, scenario=scenario.name,
                                  rate=rate).to_row())
    print("\n=== fixed vs timeout batching, same trace ===")
    print(render_rows(rows))

    # The control plane: a diurnal wave served by an autoscaler that
    # starts from one replica and follows the crest.
    wave = get_scenario("diurnal")
    scaled = ServingSimulator(
        "SMART", replicas=1, policy=policy, dispatch="least_loaded",
        cache=cluster.cache,
        slo=SloPolicy(target=2000e-6),
        autoscale=AutoscalePolicy(min_replicas=1, max_replicas=6),
    )
    outcome = scaled.run_scenario(wave, 5_000, seed=7)
    ups = sum(1 for _, a in outcome.scale_events if a == "up")
    downs = sum(1 for _, a in outcome.scale_events if a == "down")
    print("\n=== diurnal wave, autoscaling 1..6 replicas ===")
    print(render_rows([outcome.to_row()]))
    print(f"pool swing          : {outcome.low_replicas} -> "
          f"{outcome.peak_replicas} replicas "
          f"({ups} scale-ups, {downs} scale-downs)")
    print(f"SLO attainment      : {outcome.slo_attainment:.1%} "
          f"within {outcome.slo_target * 1e6:.0f} us")

    # Predictive autoscaling: a Holt forecast of the arrival-rate
    # history sizes the pool ahead of the crest instead of reacting
    # to it (the simulator calibrates per-replica capacity from the
    # trace's own model mix).
    predictive = ServingSimulator(
        "SMART", replicas=1, policy=policy, dispatch="least_loaded",
        cache=cluster.cache, slo=SloPolicy(target=2000e-6),
        autoscale=ForecastScalePolicy(min_replicas=1, max_replicas=6,
                                      mode="holt",
                                      target_utilization=0.6),
    )
    forecasted = predictive.run_scenario(wave, 5_000, seed=7)
    print("\n=== the same wave under predictive (Holt) scaling ===")
    print(f"p95 latency         : "
          f"{outcome.latency_percentile(95) * 1e6:.0f} us reactive "
          f"-> {forecasted.latency_percentile(95) * 1e6:.0f} us "
          f"predictive")
    print(f"SLO attainment      : {outcome.slo_attainment:.1%} -> "
          f"{forecasted.slo_attainment:.1%}")

    # Scheduling policies: EDF flush ordering boosts one model's
    # priority class, and work stealing rebalances a round-robin
    # pool whose replicas run at different speeds.
    boosted = ServingSimulator(
        "SMART", replicas=2, policy=policy, dispatch="least_loaded",
        cache=cluster.cache, flush=EdfFlush({"ResNet50": 1}),
    )
    edf = boosted.run(trace, scenario=scenario.name, rate=rate)
    stealing = ServingSimulator(
        accelerators=["SMART", "TPU"], policy=policy,
        dispatch="round_robin", cache=cluster.cache,
        steal=WorkStealPolicy(max_steals=4),
    )
    balanced = stealing.run(trace, scenario=scenario.name, rate=rate)
    unbalanced = ServingSimulator(
        accelerators=["SMART", "TPU"], policy=policy,
        dispatch="round_robin", cache=cluster.cache,
    ).run(trace, scenario=scenario.name, rate=rate)
    print("\n=== scheduling policies on the bursty trace ===")
    print(f"EDF + priority      : ResNet50 boosted to class 1 "
          f"(p99 {edf.latency_percentile(99) * 1e6:.0f} us)")
    print(f"work stealing       : {balanced.stolen} batches stolen; "
          f"p95 {unbalanced.latency_percentile(95) * 1e6:.0f} -> "
          f"{balanced.latency_percentile(95) * 1e6:.0f} us on the "
          f"mixed SMART/TPU pool")

    # A failure storm: replicas drop mid-trace, their in-flight
    # batches re-dispatch to survivors, and everyone still finishes.
    stormy = ServingSimulator(
        "SMART", replicas=3, policy=policy, dispatch="least_loaded",
        cache=cluster.cache,
        failures=FailurePlan(count=3, downtime_frac=0.15, seed=7),
    )
    storm = stormy.run_scenario(get_scenario("steady"), 5_000, seed=7)
    print("\n=== failure storm on 3 replicas ===")
    print(render_rows([storm.to_row()]))
    print(f"outage dip          : {storm.replicas} -> "
          f"{storm.low_replicas} replicas; "
          f"{storm.redispatched} batch(es) re-dispatched, "
          f"{storm.wasted_energy * 1e6:.0f} uJ wasted")


if __name__ == "__main__":
    main()
