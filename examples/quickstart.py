"""Quickstart: simulate one CNN inference on SMART vs its baselines.

Run:  python examples/quickstart.py
"""

from repro.core import (
    make_energy_model,
    make_smart,
    make_supernpu,
    make_tpu,
)
from repro.models import get_model

def main() -> None:
    network = get_model("AlexNet")
    print(f"{network.name}: {network.total_macs / 1e9:.2f} GMAC, "
          f"{network.total_weight_bytes / 1e6:.1f} MB of weights\n")

    print(f"{'design':10s} {'latency':>12s} {'TMAC/s':>9s} "
          f"{'% peak':>7s} {'energy':>10s}")
    for accelerator in (make_tpu(), make_supernpu(), make_smart()):
        run = accelerator.simulate(network, batch=1)
        energy = make_energy_model(accelerator).evaluate(run)
        print(f"{accelerator.name:10s} "
              f"{run.latency * 1e6:9.1f} us "
              f"{run.throughput_macs / 1e12:9.2f} "
              f"{run.throughput_macs / accelerator.peak_macs:7.1%} "
              f"{energy.total * 1e3:8.2f} mJ")

    smart = make_smart().simulate(network, batch=1)
    supernpu = make_supernpu().simulate(network, batch=1)
    print(f"\nSMART vs SuperNPU (single image): "
          f"{supernpu.latency / smart.latency:.1f}x faster "
          f"(the paper reports 3.9x on the 6-model geomean)")


if __name__ == "__main__":
    main()
