"""Observe a serving run end to end: telemetry -> blocks -> report.

Attaches a :class:`Telemetry` sink to an autoscaled diurnal run and
pulls the story out of the trace: what the control plane did (flush
causes, scale actions), how the timeline evolved (in-system requests,
arrival rate, replicas), then feeds the same rows through the
``repro.eval.blocks`` pipeline and finishes by building the fleet
report — the JSON/HTML artefact ``repro report`` emits — from the
committed bench history plus this fresh trace.

Run:  python examples/observability.py
"""

from repro.eval import render_rows
from repro.eval.blocks import AggregateBlock, FilterBlock, Pipeline, \
    load_bench
from repro.eval.dashboard import build_report, render_html
from repro.serving import (
    AutoscalePolicy,
    ServingSimulator,
    Telemetry,
    make_policy,
    make_scale,
)


def main() -> None:
    # -- 1. a traced, autoscaled run ---------------------------------
    telemetry = Telemetry(tick=200e-6)
    cluster = ServingSimulator(
        "SMART", replicas=1, policy=make_policy("timeout"),
        autoscale=make_scale("holt", AutoscalePolicy(
            min_replicas=1, max_replicas=6)),
        telemetry=telemetry,
    )
    result = cluster.run_scenario("diurnal", n_requests=5_000, seed=7)
    print(f"served {len(result.requests)} requests, "
          f"p99 {result.latency_percentile(99) * 1e6:.0f}us, "
          f"peak {result.peak_replicas} replicas")

    counters = telemetry.counters
    print(f"trace: {counters['arrivals']} arrivals, "
          f"{counters['flushes']} flushes, "
          f"{counters['scale_ups']} scale-ups, "
          f"{counters['samples']} timeline samples")

    # -- 2. interrogate the event trace with blocks ------------------
    flush_causes = Pipeline([
        FilterBlock("ev", "flush"),
        AggregateBlock(by=("cause",),
                       metrics={"batches": ("ev", "count"),
                                "mean_size": ("size", "mean")}),
    ]).apply(telemetry.rows)
    print("\nwhy batches left their queues:")
    print(render_rows(flush_causes))

    busiest = Pipeline([
        FilterBlock("ev", "sample"),
        AggregateBlock(by=(), metrics={
            "peak_in_system": ("in_system", "max"),
            "peak_rate_rps": ("rate_rps", "max"),
            "energy_j": ("energy_j", "last")}),
    ]).apply(telemetry.rows)
    print("timeline peaks:")
    print(render_rows(busiest))

    # -- 3. the fleet report -----------------------------------------
    trace_rows = [dict(r, trace="diurnal-holt") for r in telemetry.rows]
    report = build_report(load_bench("BENCH_serving.json"),
                          telemetry_rows=trace_rows)
    for cell in report["bench"]["cells"]:
        print(f"bench {cell['cell']}: latest {cell['latest_rps']:.0f} "
              f"rps ({cell['delta_pct']:+.1f}% vs median of last "
              f"{report['window']})")
    with open("observability-report.html", "w") as handle:
        handle.write(render_html(report))
    print("\nwrote observability-report.html "
          "(same artefact as `repro report`)")


if __name__ == "__main__":
    main()
